//! `telemetry-diff` — the CI metric regression gate.
//!
//! ```text
//! telemetry-diff --baseline PATH --current PATH [--write] [-q | --verbose]
//! telemetry-diff --baseline PATH --self-test [-q | --verbose]
//!
//! --baseline PATH   committed TelemetryBaseline JSON (tolerances + report)
//! --current PATH    the run to judge: a TelemetryReport JSON, or a sweep
//!                   summary JSON (its aggregate report is used)
//! --write           (re)capture: wrap --current in the default tolerance
//!                   policy and write it to --baseline instead of diffing
//! --self-test       self-test-only mode: inject drift (both directions)
//!                   into the baseline's own report, require the gate to
//!                   catch it, and exit — no --current needed
//! ```
//!
//! `--self-test` is its own mode so CI can run it as a separate step: a
//! red self-test step means *the gate is broken*, a red diff step means
//! *the metrics drifted* — the two failures are distinguishable at a
//! glance.
//!
//! Exits 0 when every metric is inside its tolerance band (or the
//! self-test passes), 1 on drift or a failed self-test, 2 on usage
//! errors. See `gate` module docs for the band semantics.

use enviromic_bench::gate::{self, TelemetryBaseline};
use enviromic_telemetry::{log, log_info, TelemetryReport};

struct Options {
    baseline: String,
    current: String,
    write: bool,
    self_test: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: telemetry-diff --baseline PATH --current PATH [--write] \
         [-q|--quiet] [-v|--verbose]\n\
         \x20      telemetry-diff --baseline PATH --self-test [-q|--quiet] [-v|--verbose]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        baseline: String::new(),
        current: String::new(),
        write: false,
        self_test: false,
    };
    let mut quiet = false;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--baseline" => opts.baseline = value(),
            "--current" => opts.current = value(),
            "--write" => opts.write = true,
            "--self-test" => opts.self_test = true,
            "--quiet" | "-q" => quiet = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    log::init_from_flags(quiet, verbose);
    if opts.baseline.is_empty() || (opts.current.is_empty() && !opts.self_test) {
        usage();
    }
    if opts.self_test && (opts.write || !opts.current.is_empty()) {
        usage();
    }
    opts
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("telemetry-diff: could not read {path}: {e}");
        std::process::exit(2);
    })
}

fn parse_baseline(path: &str) -> TelemetryBaseline {
    TelemetryBaseline::from_json(&read(path)).unwrap_or_else(|e| {
        eprintln!("telemetry-diff: could not parse baseline {path}: {e}");
        std::process::exit(2);
    })
}

/// Accepts either a bare `TelemetryReport` or a sweep summary (any JSON
/// object with an `aggregate` report field).
fn parse_current(path: &str, text: &str) -> TelemetryReport {
    if let Ok(report) = TelemetryReport::from_json(text) {
        return report;
    }
    let fallback = serde::Value::from_json(text)
        .ok()
        .and_then(|v| v.get("aggregate").cloned())
        .and_then(|v| {
            serde::Deserialize::from_value(&v)
                .map_err(|_: serde::DeError| ())
                .ok()
        });
    fallback.unwrap_or_else(|| {
        eprintln!("telemetry-diff: {path} is neither a TelemetryReport nor a sweep summary");
        std::process::exit(2);
    })
}

fn main() {
    let opts = parse_args();

    if opts.self_test {
        let baseline = parse_baseline(&opts.baseline);
        match gate::self_test(&baseline) {
            Ok(caught) => {
                println!(
                    "telemetry gate self-test: OK — caught {} injected drifts ({})",
                    caught.len(),
                    opts.baseline
                );
            }
            Err(e) => {
                eprintln!("telemetry-diff: SELF-TEST FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let current = parse_current(&opts.current, &read(&opts.current));

    if opts.write {
        let baseline = TelemetryBaseline::capture(current);
        let path = std::path::Path::new(&opts.baseline);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        if let Err(e) = std::fs::write(path, baseline.to_json()) {
            eprintln!("telemetry-diff: could not write {}: {e}", opts.baseline);
            std::process::exit(2);
        }
        log_info!("[telemetry-diff] baseline written to {}", opts.baseline);
        return;
    }

    let baseline = parse_baseline(&opts.baseline);
    let drifts = gate::diff(&baseline, &current);
    if drifts.is_empty() {
        println!("telemetry gate: OK ({} vs {})", opts.current, opts.baseline);
    } else {
        println!(
            "telemetry gate: {} metric(s) drifted ({} vs {}):",
            drifts.len(),
            opts.current,
            opts.baseline
        );
        print!("{}", gate::render_drifts(&drifts));
        std::process::exit(1);
    }
}
