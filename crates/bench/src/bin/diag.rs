//! Diagnostic tool: dissects redundancy and balancing behaviour of one
//! indoor run, then prints the run's telemetry dashboard. Not part of the
//! figure set; useful when calibrating.
//!
//! ```text
//! diag [SECS] [coop|full|baseline] [-q|--quiet] [-v|--verbose]
//! diag mobile
//! ```

use enviromic::core::{Mode, NodeConfig};
use enviromic::harness::run_scenario;
use enviromic::sim::{RecordKind, TraceEvent};
use enviromic::workloads::{indoor_scenario, IndoorParams};
use enviromic_bench::indoor::suite_world_config;
use enviromic_telemetry::{log, log_info};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "-q" || a == "--quiet");
    let verbose = args.iter().any(|a| a == "-v" || a == "--verbose");
    args.retain(|a| !matches!(a.as_str(), "-q" | "--quiet" | "-v" | "--verbose"));
    log::init_from_flags(quiet, verbose);
    let first = args.first().cloned().unwrap_or_else(|| "900".into());
    if first == "mobile" {
        diag_mobile();
        return;
    }
    let secs: f64 = first.parse().unwrap_or(900.0);
    let mode = args.get(1).cloned().unwrap_or_else(|| "coop".into());
    let params = IndoorParams {
        duration_secs: secs,
        ..IndoorParams::default()
    };
    let scenario = indoor_scenario(&params, 1);
    let cfg = match mode.as_str() {
        "baseline" => NodeConfig::default().with_mode(Mode::Uncoordinated),
        "full" => NodeConfig::default().with_mode(Mode::Full),
        _ => NodeConfig::default().with_mode(Mode::CooperativeOnly),
    }
    .with_flash_chunks(650);
    log_info!("[diag] indoor run: {secs:.0}s, mode {mode}...");
    let run = run_scenario(scenario, &cfg, suite_world_config(1), 20.0);
    let exp = run.experiment();

    // Pairwise overlap between task recordings attributed to one source.
    let mut recs: Vec<(u64, u64, u32, u32)> = Vec::new();
    for e in run.trace.iter() {
        if let TraceEvent::Recorded {
            node,
            t0,
            t1,
            kind,
            event,
            ..
        } = e
        {
            if *kind != RecordKind::Baseline || mode == "baseline" {
                let src = exp.attribute(*node, *t0, *t1);
                recs.push((
                    t0.as_jiffies(),
                    t1.as_jiffies(),
                    node.0,
                    src.map(|s| s.0).unwrap_or(u32::MAX),
                ));
            }
            let _ = event;
        }
    }
    recs.sort_unstable();
    let mut overlap_j = 0u64;
    let mut total_j = 0u64;
    for (i, a) in recs.iter().enumerate() {
        total_j += a.1 - a.0;
        for b in recs[i + 1..].iter() {
            if b.0 >= a.1 {
                break;
            }
            if a.3 == b.3 {
                overlap_j += a.1.min(b.1) - b.0;
            }
        }
    }
    println!(
        "recorded intervals: {}  total {:.1}s  pairwise same-source overlap {:.1}s ({:.1}%)",
        recs.len(),
        total_j as f64 / 32768.0,
        overlap_j as f64 / 32768.0,
        100.0 * overlap_j as f64 / total_j.max(1) as f64
    );
    let unattributed = recs.iter().filter(|r| r.3 == u32::MAX).count();
    println!("unattributed recordings: {unattributed}");

    let elections = run
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::LeaderElected { handoff: false, .. }))
        .count();
    let handoffs = run
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::LeaderElected { handoff: true, .. }))
        .count();
    println!(
        "events: {}  fresh elections: {}  handoffs: {}",
        run.scenario.sources.len(),
        elections,
        handoffs
    );

    let migrated: u32 = run
        .trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Migrated {
                duplicated: false,
                chunks,
                ..
            } => Some(*chunks),
            _ => None,
        })
        .sum();
    let dup_chunks: u32 = run
        .trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Migrated {
                duplicated: true,
                chunks,
                ..
            } => Some(*chunks),
            _ => None,
        })
        .sum();
    let dropped = run
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::RecordDropped { .. }))
        .count();
    println!("migrated chunks: {migrated}  possible-duplicate chunks: {dup_chunks}  drop events: {dropped}");
    let mut kinds: std::collections::BTreeMap<&str, u64> = Default::default();
    for e in run.trace.iter() {
        if let TraceEvent::MessageSent { kind, .. } = e {
            *kinds.entry(kind).or_default() += 1;
        }
    }
    println!("message census: {kinds:?}");
    println!(
        "final miss: {:.3}  redundancy: {:.3}",
        exp.miss_ratio(secs),
        exp.redundancy_series(secs, secs)
            .last()
            .map(|p| p.1)
            .unwrap_or(0.0)
    );
    println!();
    print!("{}", run.telemetry.render_dashboard());
}

/// Gap forensics for the Fig. 6 mobile workload: where inside the event
/// does coverage break, averaged over seeds?
fn diag_mobile() {
    use enviromic::harness::indoor_world_config;
    use enviromic::workloads::{mobile_scenario, MobileParams};
    let mut startup = Vec::new();
    let mut midgaps = Vec::new();
    let mut miss = Vec::new();
    for seed in 0..20u64 {
        let scenario = mobile_scenario(&MobileParams::default());
        let (ev0, ev1) = (
            scenario.sources[0].start.as_jiffies(),
            scenario.sources[0].stop.as_jiffies(),
        );
        let cfg = NodeConfig::default().with_mode(Mode::CooperativeOnly);
        let run = enviromic::harness::run_scenario(scenario, &cfg, indoor_world_config(seed), 1.0);
        let mut iv: Vec<(u64, u64)> = run
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Recorded {
                    t0,
                    t1,
                    kind: RecordKind::Task,
                    ..
                } => Some((t0.as_jiffies().max(ev0), t1.as_jiffies().min(ev1))),
                _ => None,
            })
            .filter(|(a, b)| b > a)
            .collect();
        iv.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (a, b) in iv {
            match merged.last_mut() {
                Some((_, lb)) if a <= *lb => *lb = (*lb).max(b),
                _ => merged.push((a, b)),
            }
        }
        let first = merged.first().map(|&(a, _)| a).unwrap_or(ev1);
        startup.push((first - ev0) as f64 / 32768.0);
        let mut gap_total = 0u64;
        for w in merged.windows(2) {
            gap_total += w[1].0 - w[0].1;
        }
        let tail = ev1.saturating_sub(merged.last().map(|&(_, b)| b).unwrap_or(ev0));
        midgaps.push((gap_total + tail) as f64 / 32768.0);
        let covered: u64 = merged.iter().map(|(a, b)| b - a).sum();
        miss.push(1.0 - covered as f64 / (ev1 - ev0) as f64);
    }
    let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "mobile gaps over {} seeds: startup {:.2}s  mid+tail {:.2}s  miss {:.3}",
        startup.len(),
        avg(&startup),
        avg(&midgaps),
        avg(&miss)
    );
}
