//! The §IV-B indoor storage-balancing experiment suite.
//!
//! One 4400-second run per compared setting — the uncoordinated baseline,
//! cooperative recording only, and full load balancing at β_max ∈ {4, 3, 2}
//! — drives Figs. 10 (miss ratio), 11 (redundancy), 12 (control messages),
//! 13 (storage contours), 14 (overhead contours), and the headline
//! "4-fold effective storage capacity" claim.
//!
//! Calibration (recorded in EXPERIMENTS.md): usable flash is 650 chunks
//! (~55 s of audio) per node — the paper never states the usable fraction
//! of the MicaZ's 0.5 MB, and this choice reproduces its end-of-run
//! ordering. Per-event loudness jitter plus per-node microphone gain
//! spread reproduce the imperfect event detection the paper credits for
//! the baseline's ~0.5 (not 0.75) redundancy ratio.

use enviromic::core::{Mode, NodeConfig};
use enviromic::harness::{indoor_world_config, ExperimentRun};
use enviromic::metrics::{ContourGrid, Experiment};
use enviromic::sweep::{run_sweep, JobInput, ScenarioSpec, SweepPlan};
use enviromic::telemetry::TelemetryReport;
use enviromic::types::SimDuration;
use enviromic::workloads::{indoor_scenario, IndoorParams, Topology};

/// Message kinds counted as "control messages" in Figs. 12/14 (task
/// assignment plus load transfer, per the paper's definition).
pub const CONTROL_KINDS: &[&str] = &[
    "LEADER_ANNOUNCE",
    "RESIGN",
    "TASK_REQUEST",
    "TASK_CONFIRM",
    "TASK_REJECT",
    "MIGRATE_OFFER",
    "MIGRATE_ACCEPT",
    "BULK_DATA",
    "BULK_ACK",
];

/// The five compared settings of Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Setting {
    /// Each node records independently on detection.
    Baseline,
    /// Cooperative recording without balancing.
    CooperativeOnly,
    /// Full system with the given `β_max`.
    LoadBalance(f64),
}

impl Setting {
    /// The label used in figure legends.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Setting::Baseline => "baseline".into(),
            Setting::CooperativeOnly => "coop-only".into(),
            Setting::LoadBalance(b) => format!("lb-bmax{b:.0}"),
        }
    }

    /// Node configuration for this setting.
    #[must_use]
    pub fn node_config(&self) -> NodeConfig {
        let cfg = NodeConfig::default().with_flash_chunks(650);
        match self {
            Setting::Baseline => cfg.with_mode(Mode::Uncoordinated),
            Setting::CooperativeOnly => cfg.with_mode(Mode::CooperativeOnly),
            Setting::LoadBalance(b) => cfg.with_mode(Mode::Full).with_beta_max(*b),
        }
    }

    /// All five settings in Fig. 10 order.
    #[must_use]
    pub fn all() -> Vec<Setting> {
        vec![
            Setting::Baseline,
            Setting::CooperativeOnly,
            Setting::LoadBalance(4.0),
            Setting::LoadBalance(3.0),
            Setting::LoadBalance(2.0),
        ]
    }
}

/// Results of the full suite: one run per setting, sharing one scenario
/// seed.
#[derive(Debug)]
pub struct IndoorSuite {
    /// Experiment duration, seconds.
    pub duration_secs: f64,
    /// `(setting, run)` pairs in [`Setting::all`] order.
    pub runs: Vec<(Setting, ExperimentRun)>,
}

/// World configuration shared by all indoor suite runs.
#[must_use]
pub fn suite_world_config(seed: u64) -> enviromic::sim::WorldConfig {
    let mut wcfg = indoor_world_config(seed);
    wcfg.acoustics.mic_gain_spread = 0.10;
    wcfg.occupancy_snapshot_period = Some(SimDuration::from_secs_f64(60.0));
    wcfg
}

/// Runs the suite on up to one worker per setting (the pre-sweep-engine
/// behaviour). `duration_secs` is 4400 in the paper; pass less for quick
/// runs.
#[must_use]
pub fn run_suite(seed: u64, duration_secs: f64) -> IndoorSuite {
    run_suite_jobs(seed, duration_secs, Setting::all().len())
}

/// Runs the suite's five settings as one sweep on `jobs` worker threads.
/// Each setting's run is bit-identical regardless of `jobs` (every job
/// owns its own world and RNG).
#[must_use]
pub fn run_suite_jobs(seed: u64, duration_secs: f64, jobs: usize) -> IndoorSuite {
    let settings = Setting::all();
    let specs = settings
        .iter()
        .map(|&setting| {
            let params = IndoorParams {
                duration_secs,
                ..IndoorParams::default()
            };
            ScenarioSpec::new(setting.label(), move |seed| JobInput {
                scenario: indoor_scenario(&params, seed),
                node_cfg: setting.node_config(),
                world_cfg: suite_world_config(seed),
                drain_secs: 20.0,
                faults: enviromic_sim::FaultPlan::new(),
            })
        })
        .collect();
    let out = run_sweep(&SweepPlan::new(vec![seed], specs), jobs);
    IndoorSuite {
        duration_secs,
        runs: settings
            .into_iter()
            .zip(out.jobs.into_iter().map(|j| j.run))
            .collect(),
    }
}

impl IndoorSuite {
    /// Fig. 10: cumulative miss-ratio series per setting.
    #[must_use]
    pub fn fig10_miss_series(&self, sample_secs: f64) -> Vec<(String, Vec<(f64, f64)>)> {
        self.runs
            .iter()
            .map(|(s, run)| {
                (
                    s.label(),
                    run.experiment()
                        .miss_ratio_series(self.duration_secs, sample_secs),
                )
            })
            .collect()
    }

    /// Fig. 11: redundancy-ratio series per setting.
    #[must_use]
    pub fn fig11_redundancy_series(&self, sample_secs: f64) -> Vec<(String, Vec<(f64, f64)>)> {
        self.runs
            .iter()
            .map(|(s, run)| {
                (
                    s.label(),
                    run.experiment()
                        .redundancy_series(self.duration_secs, sample_secs),
                )
            })
            .collect()
    }

    /// Fig. 12: cumulative control-message series for the four cooperative
    /// settings (the baseline sends nothing).
    #[must_use]
    pub fn fig12_message_series(&self, sample_secs: f64) -> Vec<(String, Vec<(f64, f64)>)> {
        self.runs
            .iter()
            .filter(|(s, _)| !matches!(s, Setting::Baseline))
            .map(|(s, run)| {
                (
                    s.label(),
                    run.experiment()
                        .message_series(CONTROL_KINDS, self.duration_secs, sample_secs),
                )
            })
            .collect()
    }

    /// The β_max = 2 run (used by the contour figures).
    #[must_use]
    pub fn lb2_run(&self) -> &ExperimentRun {
        self.runs
            .iter()
            .find(|(s, _)| matches!(s, Setting::LoadBalance(b) if (*b - 2.0).abs() < 1e-9))
            .map(|(_, run)| run)
            .expect("suite contains beta_max = 2")
    }

    /// Fig. 13: storage-occupancy contours (in chunks) at the given
    /// sampling instants, from the β_max = 2 run.
    #[must_use]
    pub fn fig13_contours(&self, at_secs: &[f64]) -> Vec<(f64, ContourGrid)> {
        let run = self.lb2_run();
        let topo = &run.scenario.topology;
        at_secs
            .iter()
            .map(|&t| {
                let used = run.experiment().occupancy_at(t);
                (t, node_grid(topo, &used))
            })
            .collect()
    }

    /// Fig. 14: per-node control-message contour from the β_max = 2 run.
    #[must_use]
    pub fn fig14_contour(&self) -> ContourGrid {
        let run = self.lb2_run();
        let counts = run.experiment().per_node_message_counts(CONTROL_KINDS);
        node_grid(&run.scenario.topology, &counts)
    }

    /// The suite's telemetry, folded into one report with each run's
    /// metrics prefixed by its setting label (`lb-bmax2.core.election.won`,
    /// ...), so the five settings stay comparable side by side.
    #[must_use]
    pub fn telemetry_report(&self) -> TelemetryReport {
        let mut total = TelemetryReport::default();
        for (setting, run) in &self.runs {
            total.merge(&run.telemetry.with_prefix(&setting.label()));
        }
        total
    }

    /// Whole-run miss ratio per setting.
    #[must_use]
    pub fn final_miss_ratios(&self) -> Vec<(String, f64)> {
        self.runs
            .iter()
            .map(|(s, run)| (s.label(), run.experiment().miss_ratio(self.duration_secs)))
            .collect()
    }

    /// The headline metrics comparing β_max = 2 with the uncoordinated
    /// baseline: `(miss_ratio_improvement, recorded_data_factor)`. The
    /// paper reports the former ("more than a 4-fold miss ratio
    /// improvement"; abstract: "up to a 4-fold improvement in effective
    /// storage capacity").
    #[must_use]
    pub fn headline_improvement(&self) -> (f64, f64) {
        let miss = |setting: &Setting| {
            self.runs
                .iter()
                .find(|(s, _)| s.label() == setting.label())
                .map(|(_, run)| run.experiment().miss_ratio(self.duration_secs))
                .unwrap_or(1.0)
        };
        let baseline = miss(&Setting::Baseline);
        let lb2 = miss(&Setting::LoadBalance(2.0));
        (
            baseline / lb2.max(1e-9),
            (1.0 - lb2) / (1.0 - baseline).max(1e-9),
        )
    }
}

/// Bins per-node values into the topology's logical grid.
fn node_grid(topo: &Topology, values: &[u64]) -> ContourGrid {
    let cells: Vec<(usize, usize)> = (0..topo.len()).map(|i| topo.cell_of(i)).collect();
    let vals: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    ContourGrid::from_node_values(topo.cols, topo.rows, &cells, &vals)
}

/// Convenience: a metrics view plus grid binning for arbitrary runs.
#[must_use]
pub fn experiment_of(run: &ExperimentRun) -> Experiment<'_> {
    run.experiment()
}
