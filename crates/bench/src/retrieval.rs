//! Retrieval serving benchmark: archive build, cached range-query
//! serving, and gap re-request planning over the golden seed-42 run.
//!
//! The driver rebuilds the basestation archive from the same
//! `quick-indoor` 120 s run that `tests/determinism.rs` pins to its
//! golden digest, generates a committed query workload from the
//! archive's own span (every draw derives from a SplitMix64 stream
//! seeded by the run seed), and serves it twice — once through the LRU
//! query cache, once uncached — on the requested worker pool. The two
//! passes must produce bit-identical results; only the cached pass's
//! statistics enter the report.
//!
//! [`RetrievalReport`] carries **no wall-clock data**: counts, digests,
//! and cache ratios only. The same binary therefore writes a
//! byte-identical `BENCH_retrieval.json` at any `--jobs` value, which CI
//! exploits by regenerating it at `--jobs 1` and `--jobs 2`, diffing the
//! two, and diffing the result against the committed artifact.
//! Throughput and latency percentiles are printed to the console only.

use enviromic::archive::{find_gaps, serve_queries, ArchiveStore, RangeQuery, ServeOutcome};
use enviromic::harness::run_scenario_with_faults;
use enviromic::observe::{archive_run, rerequest_plan};
use enviromic::sweep::ScenarioSpec;
use enviromic_core::RerequestPlan;
use enviromic_telemetry::{Registry, TelemetryReport};
use enviromic_types::{EventId, NodeId, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The run the archive is built from: the golden-digest point.
pub const SCENARIO: &str = "quick-indoor";
/// Seed of the golden run (and of the workload stream derived from it).
pub const SEED: u64 = 42;
/// Scenario duration in seconds.
pub const DURATION_SECS: f64 = 120.0;
/// Coverage holes wider than this are gaps worth re-requesting.
pub const GAP_TOLERANCE_SECS: f64 = 0.5;
/// Gaps closer than this ride the same spanning-tree query flood.
pub const GAP_SLACK_SECS: f64 = 1.0;

/// Knobs of one benchmark invocation.
#[derive(Debug, Clone, Copy)]
pub struct RetrievalOptions {
    /// Queries in the generated workload.
    pub queries: usize,
    /// LRU capacity (distinct queries) for the cached pass.
    pub cache_capacity: usize,
    /// Worker threads serving the workload.
    pub jobs: usize,
}

impl Default for RetrievalOptions {
    fn default() -> Self {
        RetrievalOptions {
            queries: 600,
            cache_capacity: 256,
            jobs: 1,
        }
    }
}

/// Archive shape after ingesting the run (committed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchiveSummary {
    /// Distinct stored intervals (deduplicated).
    pub records: u64,
    /// Redundant copies dropped during ingest.
    pub duplicate_copies: u64,
    /// Distinct origin nodes with archived audio.
    pub origins: u64,
    /// Archived span, first `t0` to last `t1`, seconds.
    pub span_secs: f64,
}

/// Workload shape (committed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Total queries served.
    pub queries: u64,
    /// Distinct query keys among them.
    pub distinct: u64,
    /// LRU capacity used for the cached pass.
    pub cache_capacity: u64,
}

/// Cache behaviour of the cached pass (committed — decisions are fixed
/// serially in workload order, so these never depend on `--jobs`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSummary {
    /// Queries answered from cache.
    pub hits: u64,
    /// Queries that executed an index scan.
    pub misses: u64,
    /// LRU evictions along the way.
    pub evictions: u64,
    /// `hits / (hits + misses)`.
    pub hit_ratio: f64,
}

/// Result totals and the workload determinism fingerprint (committed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultsSummary {
    /// Records matched across the workload (with repeats).
    pub matched: u64,
    /// Payload bytes those matches cover (with repeats).
    pub bytes: u64,
    /// Order-sensitive FNV-1a digest over per-query result digests.
    pub digest: String,
}

/// Gap detection and batched re-request planning (committed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RerequestSummary {
    /// Coverage holes wider than [`GAP_TOLERANCE_SECS`].
    pub gaps: u64,
    /// Spanning-tree query floods the plan batches them into.
    pub batches: u64,
    /// Total missing audio the plan re-requests, seconds.
    pub missing_secs: f64,
}

/// The committed benchmark artifact. Contains no wall-clock figures, so
/// it is byte-identical across worker counts and across hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalReport {
    /// Scenario label of the archived run.
    pub scenario: String,
    /// Seed of the archived run and the workload stream.
    pub seed: u64,
    /// Scenario duration, seconds.
    pub duration_secs: f64,
    /// Archive shape after ingest.
    pub archive: ArchiveSummary,
    /// Query workload shape.
    pub workload: WorkloadSummary,
    /// Cache totals of the cached pass.
    pub cache: CacheSummary,
    /// Result totals and digest.
    pub results: ResultsSummary,
    /// Gap re-request plan shape.
    pub rerequest: RerequestSummary,
}

impl RetrievalReport {
    /// Serializes to the committed pretty-JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::Serialize::to_value(self).to_json_pretty()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error string for malformed JSON or mismatched shape.
    pub fn from_json(text: &str) -> Result<RetrievalReport, String> {
        let value = serde::Value::from_json(text).map_err(|e| e.to_string())?;
        serde::Deserialize::from_value(&value).map_err(|e: serde::DeError| e.to_string())
    }

    /// Console rendering of the committed figures.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "retrieval: {} seed {} ({:.0}s)\n",
            self.scenario, self.seed, self.duration_secs
        ));
        s.push_str(&format!(
            "  archive   {} records ({} duplicate copies dropped), {} origins, {:.1}s span\n",
            self.archive.records,
            self.archive.duplicate_copies,
            self.archive.origins,
            self.archive.span_secs
        ));
        s.push_str(&format!(
            "  workload  {} queries ({} distinct), cache capacity {}\n",
            self.workload.queries, self.workload.distinct, self.workload.cache_capacity
        ));
        s.push_str(&format!(
            "  cache     {} hits / {} misses / {} evictions ({:.1}% hit ratio)\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.hit_ratio * 100.0
        ));
        s.push_str(&format!(
            "  results   {} records matched, {} bytes, digest {}\n",
            self.results.matched, self.results.bytes, self.results.digest
        ));
        s.push_str(&format!(
            "  rerequest {} gaps -> {} batched query floods ({:.2}s missing)\n",
            self.rerequest.gaps, self.rerequest.batches, self.rerequest.missing_secs
        ));
        s
    }
}

/// Everything one invocation produces: the committed report plus the
/// wall-clock figures that stay on the console.
#[derive(Debug)]
pub struct RetrievalRun {
    /// The committed artifact.
    pub report: RetrievalReport,
    /// The cached serving pass (wall-clock and latency inside).
    pub outcome: ServeOutcome,
    /// Digest of the uncached pass — must equal the cached digest.
    pub uncached_digest: u64,
    /// Seconds spent simulating the run and building the archive.
    pub build_secs: f64,
    /// `archive.*` telemetry recorded during the cached pass.
    pub telemetry: TelemetryReport,
    /// The generated workload (for per-query digest tables).
    pub queries: Vec<RangeQuery>,
    /// The batched re-request plan derived from the archive's gaps.
    pub plan: RerequestPlan,
}

impl RetrievalRun {
    /// True when the cached and uncached passes produced bit-identical
    /// results — the property CI relies on.
    #[must_use]
    pub fn cache_transparent(&self) -> bool {
        self.outcome.digest() == self.uncached_digest
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates the deterministic query workload: window starts snap to a
/// coarse grid (so the stream revisits keys and the cache has something
/// to do), lengths come from a three-point set, and every eighth query
/// filters by origin or event ID. All randomness derives from
/// `SEED`, so the workload — like everything else in the report — is a
/// pure function of the committed constants.
#[must_use]
pub fn build_workload(store: &ArchiveStore, n: usize) -> Vec<RangeQuery> {
    let Some((span0, span1)) = store.span() else {
        return Vec::new();
    };
    let span_j = span1.saturating_since(span0).as_jiffies().max(1);
    let origins: Vec<NodeId> = store.origins();
    let events: Vec<EventId> = store
        .records()
        .iter()
        .filter_map(|r| r.event)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    const GRID: u64 = 48;
    let lengths = [span_j / 24, span_j / 8, span_j / 3];
    let mut state = SEED ^ 0x5DEE_CE66_D1CE_5EED;
    (0..n)
        .map(|_| {
            let r = splitmix(&mut state);
            let start = span0 + SimDuration::from_jiffies((r % GRID) * span_j / GRID);
            let len = lengths[((r >> 8) % 3) as usize].max(1);
            let (origin, event) = match (r >> 16) % 8 {
                6 if !origins.is_empty() => {
                    (Some(origins[((r >> 24) as usize) % origins.len()]), None)
                }
                7 if !events.is_empty() => {
                    (None, Some(events[((r >> 24) as usize) % events.len()]))
                }
                _ => (None, None),
            };
            RangeQuery {
                t0: start,
                t1: start + SimDuration::from_jiffies(len),
                origin,
                event,
            }
        })
        .collect()
}

/// Simulates the golden run, freezes it into an [`ArchiveStore`], and
/// returns it with the build time.
#[must_use]
pub fn build_archive() -> (ArchiveStore, f64) {
    let started = std::time::Instant::now();
    let input = ScenarioSpec::quick_indoor(DURATION_SECS).build(SEED);
    let run = run_scenario_with_faults(
        input.scenario,
        &input.node_cfg,
        input.world_cfg,
        input.drain_secs,
        &input.faults,
    );
    (archive_run(&run), started.elapsed().as_secs_f64())
}

/// Runs the whole benchmark: build the archive, generate the workload,
/// serve it cached and uncached, detect gaps, and assemble the report.
#[must_use]
pub fn run_retrieval(opts: &RetrievalOptions) -> RetrievalRun {
    let (store, build_secs) = build_archive();
    run_retrieval_on(&store, build_secs, opts)
}

/// [`run_retrieval`] with a pre-built archive (lets tests and multi-pass
/// callers simulate the run once).
#[must_use]
pub fn run_retrieval_on(
    store: &ArchiveStore,
    build_secs: f64,
    opts: &RetrievalOptions,
) -> RetrievalRun {
    let queries = build_workload(store, opts.queries);
    let distinct = queries.iter().collect::<BTreeSet<_>>().len() as u64;

    let registry = Registry::new();
    let outcome = serve_queries(
        store,
        &queries,
        opts.cache_capacity,
        opts.jobs,
        Some(&registry),
    );
    let uncached = serve_queries(store, &queries, 0, opts.jobs, None);

    let tolerance = SimDuration::from_secs_f64(GAP_TOLERANCE_SECS);
    let gaps = find_gaps(store, tolerance);
    let plan = rerequest_plan(store, tolerance, SimDuration::from_secs_f64(GAP_SLACK_SECS));
    let missing_secs: f64 = gaps.iter().map(|g| g.span().as_secs_f64()).sum();

    let ingest = store.ingest_stats();
    let span_secs = store
        .span()
        .map_or(0.0, |(a, b)| b.saturating_since(a).as_secs_f64());
    let report = RetrievalReport {
        scenario: SCENARIO.into(),
        seed: SEED,
        duration_secs: DURATION_SECS,
        archive: ArchiveSummary {
            records: store.len() as u64,
            duplicate_copies: ingest.duplicates,
            origins: store.origins().len() as u64,
            span_secs,
        },
        workload: WorkloadSummary {
            queries: queries.len() as u64,
            distinct,
            cache_capacity: opts.cache_capacity as u64,
        },
        cache: CacheSummary {
            hits: outcome.stats.hits,
            misses: outcome.stats.misses,
            evictions: outcome.stats.evictions,
            hit_ratio: outcome.stats.hit_ratio(),
        },
        results: ResultsSummary {
            matched: outcome.matched_total(),
            bytes: outcome.results.iter().map(|r| r.bytes).sum(),
            digest: format!("0x{:016x}", outcome.digest()),
        },
        rerequest: RerequestSummary {
            gaps: gaps.len() as u64,
            batches: plan.len() as u64,
            missing_secs,
        },
    };
    RetrievalRun {
        report,
        outcome,
        uncached_digest: uncached.digest(),
        build_secs,
        telemetry: registry.report(),
        queries,
        plan,
    }
}

/// Per-query digest table ("index 0xdigest" lines) for CI to diff across
/// worker counts.
#[must_use]
pub fn digest_table(run: &RetrievalRun) -> String {
    let mut table = String::new();
    for (i, r) in run.outcome.results.iter().enumerate() {
        table.push_str(&format!("{} 0x{:016x}\n", i, r.digest));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run() -> RetrievalRun {
        let opts = RetrievalOptions {
            queries: 120,
            cache_capacity: 64,
            jobs: 2,
        };
        run_retrieval(&opts)
    }

    #[test]
    fn report_round_trips_and_caches_transparently() {
        let run = small_run();
        assert!(run.cache_transparent(), "cache must not change results");
        assert!(run.report.cache.hits > 0, "grid workload revisits keys");
        assert!(run.report.archive.records > 0);
        let back = RetrievalReport::from_json(&run.report.to_json()).expect("parses");
        assert_eq!(back, run.report);
    }

    #[test]
    fn job_count_leaves_the_report_byte_identical() {
        let (store, _) = build_archive();
        let base = RetrievalOptions {
            queries: 120,
            cache_capacity: 64,
            jobs: 1,
        };
        let one = run_retrieval_on(&store, 0.0, &base);
        let four = run_retrieval_on(&store, 0.0, &RetrievalOptions { jobs: 4, ..base });
        assert_eq!(one.report.to_json(), four.report.to_json());
        assert_eq!(digest_table(&one), digest_table(&four));
    }

    #[test]
    fn workload_is_deterministic_and_filtered() {
        let (store, _) = build_archive();
        let a = build_workload(&store, 200);
        let b = build_workload(&store, 200);
        assert_eq!(a, b);
        assert!(a.iter().any(|q| q.origin.is_some()), "origin filters drawn");
        assert!(a.iter().all(|q| q.t1 > q.t0));
    }

    #[test]
    fn telemetry_mirrors_cache_summary() {
        let run = small_run();
        assert_eq!(
            run.telemetry.counter("archive.cache.hits"),
            Some(run.report.cache.hits)
        );
        assert_eq!(
            run.telemetry.counter("archive.query.served"),
            Some(run.report.workload.queries)
        );
    }
}
