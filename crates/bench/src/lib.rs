//! Experiment harnesses regenerating every figure of the EnviroMic
//! paper's evaluation (§IV), plus shared plumbing for the Criterion
//! benches.
//!
//! | Module | Figures |
//! |---|---|
//! | [`fig03`] | Fig. 3 — sampling jitter under radio activity |
//! | [`fig06`] | Fig. 6 — miss ratio vs `Dta`; Fig. 7 — task timeline |
//! | [`fig08`] | Fig. 8 — stitched voice recording |
//! | [`indoor`] | Figs. 10–14 and the headline 4× claim |
//! | [`outdoor`] | Figs. 16–18 — the forest deployment |
//! | [`ablation`] | design-choice and future-work ablations |
//! | [`gate`] | telemetry regression gate (`telemetry-diff` binary) |
//! | [`retrieval`] | archive serving benchmark (`retrieval` binary) |
//!
//! Run `cargo run --release -p enviromic-bench --bin repro -- all` to
//! print every figure; see EXPERIMENTS.md for the paper-vs-measured
//! record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig03;
pub mod fig06;
pub mod fig08;
pub mod gate;
pub mod indoor;
pub mod outdoor;
pub mod retrieval;
