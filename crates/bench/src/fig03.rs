//! Fig. 3: measured sampling intervals under radio activity.
//!
//! Three panels, 150 samples each at a nominal 10-jiffy interval:
//! (a) no communication, (b) sending a packet, (c) receiving a packet.

use enviromic::sim::mote::{measure_sampling_intervals, summarize, CommActivity, JitterSummary};

/// One panel of Fig. 3.
#[derive(Debug)]
pub struct Panel {
    /// Panel caption.
    pub label: &'static str,
    /// The 150 observed intervals, jiffies.
    pub intervals: Vec<u64>,
    /// Summary statistics.
    pub summary: JitterSummary,
}

/// Reproduces the three panels.
#[must_use]
pub fn run(seed: u64) -> Vec<Panel> {
    let cases = [
        ("(a) no communication", CommActivity::None),
        (
            "(b) sending a packet",
            CommActivity::Sending { at_sample: 40 },
        ),
        (
            "(c) receiving a packet",
            CommActivity::Receiving { at_sample: 40 },
        ),
    ];
    cases
        .into_iter()
        .map(|(label, activity)| {
            let intervals = measure_sampling_intervals(150, 10, activity, seed);
            let summary = summarize(&intervals, 10);
            Panel {
                label,
                intervals,
                summary,
            }
        })
        .collect()
}

/// Prints the figure in the paper's layout (interval vs sample index).
#[must_use]
pub fn render(panels: &[Panel]) -> String {
    let mut out = String::from(
        "Fig. 3 — measured sampling interval between consecutive samples\n\
         (nominal 10 jiffies; 1 jiffy = 1/32768 s)\n\n",
    );
    for p in panels {
        out.push_str(&format!(
            "{}  [min {} / max {} / mean {:.2} / disturbed {:.0}%]\n",
            p.label,
            p.summary.min,
            p.summary.max,
            p.summary.mean,
            p.summary.disturbed_fraction * 100.0
        ));
        // A compact strip chart: one character per sample.
        out.push_str("  ");
        for &v in &p.intervals {
            let c = match v {
                0..=8 => '_',
                9 => '.',
                10 => '-',
                11..=13 => '+',
                _ => '^',
            };
            out.push(c);
        }
        out.push_str("\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_match_paper_shape() {
        let panels = run(1);
        assert_eq!(panels.len(), 3);
        // (a) perfectly regular.
        assert_eq!(panels[0].summary.min, 10);
        assert_eq!(panels[0].summary.max, 10);
        // (b) oscillates between 9 and 16.
        assert_eq!(panels[1].summary.min, 9);
        assert_eq!(panels[1].summary.max, 16);
        // (c) jitters in a narrower band.
        assert!(panels[2].summary.max > 10);
        assert!(panels[2].summary.max <= 15);
    }

    #[test]
    fn render_contains_all_panels() {
        let s = render(&run(1));
        assert!(s.contains("(a)"));
        assert!(s.contains("(b)"));
        assert!(s.contains("(c)"));
    }
}
