//! Fig. 8: recording the voice of a moving person.
//!
//! A speech-like source crosses a 7×4 grid while EnviroMic rotates the
//! recording task. The paper compares (a) the waveform captured by a
//! single reference mote carried with the speaker against (b) the
//! stitched EnviroMic recording, arguing visual similarity. We reproduce
//! both signals and score them with amplitude envelopes and normalized
//! cross-correlation.
//!
//! Clock note: the paper's comparison relies on FTSP-aligned timestamps
//! collected over a long-running network; this isolated 12-second run
//! zeroes initial clock offsets instead so stitching quality (not clock
//! acquisition) is what is measured.

use enviromic::core::{EnviroMicNode, Mode, NodeConfig};
use enviromic::harness::{build_world, indoor_world_config};
use enviromic::metrics::{amplitude_envelope, best_xcorr};
use enviromic::sim::acoustics::AcousticField;
use enviromic::types::{audio, NodeId, SimDuration};
use enviromic::workloads::voice_scenario;

/// Results of the voice experiment.
#[derive(Debug)]
pub struct VoiceResult {
    /// The reference recording (mote carried with the speaker).
    pub reference: Vec<u8>,
    /// The stitched EnviroMic recording (gaps filled with silence).
    pub stitched: Vec<u8>,
    /// Best normalized cross-correlation between the two.
    pub xcorr: f64,
    /// Fraction of the event covered by stitched audio.
    pub coverage: f64,
    /// Number of distinct recorders contributing chunks.
    pub recorders: usize,
}

/// Runs the experiment.
#[must_use]
pub fn run(seed: u64) -> VoiceResult {
    let scenario = voice_scenario();
    let source = scenario.sources[0].clone();
    let (t0, t1) = (source.start, source.stop);
    let event_secs = source.duration().as_secs_f64();

    // Reference: a virtual mote carried with the speaker samples the field
    // at the source position (distance zero).
    let mut field = AcousticField::new();
    field.add_source(source.clone()).expect("valid source");
    let n_samples = (event_secs * f64::from(audio::SAMPLE_RATE_HZ)) as usize;
    let reference: Vec<u8> = (0..n_samples)
        .map(|i| {
            let t_s = t0.as_secs_f64() + i as f64 / f64::from(audio::SAMPLE_RATE_HZ);
            let pos = source
                .motion
                .position_at(enviromic::types::SimTime::from_jiffies(
                    (t_s * enviromic::types::JIFFIES_PER_SEC as f64) as u64,
                ));
            field.sample(pos, t_s, 0.0)
        })
        .collect();

    // EnviroMic recording.
    let mut wcfg = indoor_world_config(seed);
    wcfg.clock.max_offset = SimDuration::ZERO;
    wcfg.clock.max_skew_ppm = 0.0;
    let cfg = NodeConfig::default().with_mode(Mode::CooperativeOnly);
    let mut world = build_world(&scenario, &cfg, wcfg);
    world.run_until(scenario.end() + SimDuration::from_secs_f64(2.0));

    // Stitch chunks from every node's store by timestamp.
    let mut chunks = Vec::new();
    for i in 0..scenario.topology.len() {
        let node = world
            .app_as::<EnviroMicNode>(NodeId::from_index(i))
            .expect("EnviroMic node");
        chunks.extend(node.store().iter());
    }
    chunks.sort_by_key(|c| c.meta.t_start);
    let mut stitched = vec![128u8; n_samples];
    let mut covered = vec![false; n_samples];
    let mut recorders = std::collections::BTreeSet::new();
    for c in &chunks {
        recorders.insert(c.meta.origin);
        let offset_s = c.meta.t_start.as_secs_f64() - t0.as_secs_f64();
        let start = (offset_s * f64::from(audio::SAMPLE_RATE_HZ)).round() as i64;
        for (k, &s) in c.payload.iter().enumerate() {
            let idx = start + k as i64;
            if idx >= 0 && (idx as usize) < stitched.len() {
                stitched[idx as usize] = s;
                covered[idx as usize] = true;
            }
        }
    }
    let coverage = covered.iter().filter(|&&c| c).count() as f64 / covered.len().max(1) as f64;

    // Compare amplitude envelopes (50 ms windows) — the "visual shape".
    let win = (0.05 * f64::from(audio::SAMPLE_RATE_HZ)) as usize;
    let env_a = amplitude_envelope(&reference, win);
    let env_b = amplitude_envelope(&stitched, win);
    let (xcorr, _) = best_xcorr(&env_a, &env_b, 8);

    let _ = t1;
    VoiceResult {
        reference,
        stitched,
        xcorr,
        coverage,
        recorders: recorders.len(),
    }
}

/// Renders the two envelopes side by side plus the similarity score.
#[must_use]
pub fn render(result: &VoiceResult) -> String {
    let win = (0.05 * f64::from(audio::SAMPLE_RATE_HZ)) as usize;
    let env_a = amplitude_envelope(&result.reference, win);
    let env_b = amplitude_envelope(&result.stitched, win);
    // Each panel auto-scales to its own peak, as the paper's plots do
    // (the stitched signal is attenuated by microphone distance).
    let strip = |env: &[f64]| -> String {
        let max = env.iter().copied().fold(1e-9f64, f64::max);
        env.iter()
            .map(|&v| {
                let level = (v / max * 8.0).round() as usize;
                char::from(b" .:-=+*#%"[level.min(8)])
            })
            .collect()
    };
    format!(
        "Fig. 8 — recording voice of a moving human\n\
         (a) single reference mote   |{}|\n\
         (b) EnviroMic (stitched)    |{}|\n\n\
         envelope cross-correlation: {:.3}\n\
         stitched coverage of event: {:.1}%\n\
         contributing recorders:     {}\n",
        strip(&env_a),
        strip(&env_b),
        result.xcorr,
        result.coverage * 100.0,
        result.recorders
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stitched_recording_resembles_reference() {
        // Seed recalibrated for the in-tree rand stand-in's PRNG stream.
        let r = run(2);
        assert!(
            r.coverage > 0.6,
            "stitched recording too sparse: {:.2}",
            r.coverage
        );
        assert!(r.xcorr > 0.5, "envelopes dissimilar: {:.3}", r.xcorr);
        assert!(r.recorders >= 2, "no task rotation: {}", r.recorders);
    }
}
