//! Ablation studies for the design choices DESIGN.md calls out, plus the
//! paper's future-work extensions.
//!
//! * **prelude** (§II-A.1) — does the 1-second uncoordinated prelude
//!   recover the election-startup misses?
//! * **piggybacking** (§III-A) — how many packets does the neighborhood
//!   broadcast module save?
//! * **global balance hints** (§VI future work) — does gossiped global
//!   pressure damp the Fig. 13(c) boundary effect (occupancy variance)?
//! * **controlled redundancy** (§VI future work) — replication factor 2
//!   trades storage for robustness.
//! * **detector margin** — silence-filtering sensitivity: misses vs.
//!   false-positive (unattributable) recordings.

use crate::indoor::suite_world_config;
use enviromic::core::{Mode, NodeConfig};
use enviromic::harness::ExperimentRun;
use enviromic::metrics::mean;
use enviromic::sim::TraceEvent;
use enviromic::sweep::{run_sweep, JobInput, ScenarioSpec, SweepPlan};
use enviromic::types::SimDuration;
use enviromic::workloads::{indoor_scenario, IndoorParams};

/// One ablation row: a label and its measured metrics.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Whole-run miss ratio.
    pub miss: f64,
    /// Final stored-data redundancy.
    pub redundancy: f64,
    /// Total radio packets sent.
    pub packets: u64,
    /// Standard deviation of final per-node occupancy (chunks).
    pub occupancy_stddev: f64,
}

fn row_from_run(label: &str, run: &ExperimentRun, duration: f64) -> AblationRow {
    let exp = run.experiment();
    let packets = run
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::MessageSent { .. }))
        .count() as u64;
    let occupancy = exp.occupancy_at(duration);
    let occ_f: Vec<f64> = occupancy.iter().map(|&u| u as f64).collect();
    let m = mean(&occ_f);
    let var = occ_f.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / occ_f.len().max(1) as f64;
    AblationRow {
        label: label.to_owned(),
        miss: exp.miss_ratio(duration),
        redundancy: exp
            .redundancy_series(duration, duration)
            .last()
            .map_or(0.0, |p| p.1),
        packets,
        occupancy_stddev: var.sqrt(),
    }
}

fn base_cfg() -> NodeConfig {
    NodeConfig::default()
        .with_mode(Mode::Full)
        .with_flash_chunks(650)
        .with_beta_max(2.0)
}

/// Runs the ablation battery on up to one worker per configuration.
/// `duration` of 2200 s keeps contrasts visible in reasonable time.
#[must_use]
pub fn run(seed: u64, duration: f64) -> Vec<AblationRow> {
    run_jobs(seed, duration, usize::MAX)
}

/// Runs the ablation battery as one sweep on `jobs` worker threads.
#[must_use]
pub fn run_jobs(seed: u64, duration: f64, jobs: usize) -> Vec<AblationRow> {
    let configs: Vec<(&str, NodeConfig)> = vec![
        ("full (reference)", base_cfg()),
        (
            "prelude 1s",
            base_cfg().with_prelude(SimDuration::from_secs_f64(1.0)),
        ),
        ("no piggybacking", {
            let mut c = base_cfg();
            c.piggybacking = false;
            c
        }),
        ("global hints", {
            let mut c = base_cfg();
            c.global_balance_hints = true;
            c
        }),
        ("replication x2", {
            let mut c = base_cfg();
            c.replication_factor = 2;
            c
        }),
        ("margin 30 (stricter)", {
            let mut c = base_cfg();
            c.detect_margin = 30.0;
            c
        }),
        ("margin 35 (deaf)", {
            let mut c = base_cfg();
            c.detect_margin = 35.0;
            c
        }),
    ];
    let labels: Vec<&str> = configs.iter().map(|(label, _)| *label).collect();
    let specs = configs
        .into_iter()
        .map(|(label, cfg)| {
            let params = IndoorParams {
                duration_secs: duration,
                ..IndoorParams::default()
            };
            ScenarioSpec::new(label, move |seed| JobInput {
                scenario: indoor_scenario(&params, seed),
                node_cfg: cfg.clone(),
                world_cfg: suite_world_config(seed),
                drain_secs: 20.0,
                faults: enviromic_sim::FaultPlan::new(),
            })
        })
        .collect();
    let out = run_sweep(&SweepPlan::new(vec![seed], specs), jobs);
    labels
        .into_iter()
        .zip(&out.jobs)
        .map(|(label, job)| row_from_run(label, &job.run, duration))
        .collect()
}

/// Renders the ablation table.
#[must_use]
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::from(
        "Ablations — indoor workload, full system unless noted\n\n\
         configuration             miss    redund   packets   occ-stddev\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:<22} {:>6.3}  {:>7.3}  {:>8}  {:>10.1}\n",
            r.label, r.miss, r.redundancy, r.packets, r.occupancy_stddev
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_ablation_battery_runs() {
        let rows = run(5, 400.0);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.miss >= 0.0 && r.miss <= 1.0, "{r:?}");
        }
        // Piggybacking saves packets.
        let reference = rows.iter().find(|r| r.label.contains("reference")).unwrap();
        let no_piggy = rows.iter().find(|r| r.label.contains("piggy")).unwrap();
        assert!(
            no_piggy.packets > reference.packets,
            "piggybacking should reduce packet count: {} vs {}",
            no_piggy.packets,
            reference.packets
        );
    }
}
