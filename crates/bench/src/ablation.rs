//! Ablation studies for the design choices DESIGN.md calls out, plus the
//! paper's future-work extensions.
//!
//! * **prelude** (§II-A.1) — does the 1-second uncoordinated prelude
//!   recover the election-startup misses?
//! * **piggybacking** (§III-A) — how many packets does the neighborhood
//!   broadcast module save?
//! * **global balance hints** (§VI future work) — does gossiped global
//!   pressure damp the Fig. 13(c) boundary effect (occupancy variance)?
//! * **controlled redundancy** (§VI future work) — replication factor 2
//!   trades storage for robustness.
//! * **detector margin** — silence-filtering sensitivity: misses vs.
//!   false-positive (unattributable) recordings.
//!
//! The module also hosts the **storage-policy matrix**
//! ([`run_policy_matrix`]): every
//! [`BalancePolicy`](enviromic::core::BalancePolicy) implementation run
//! head-to-head through the indoor, forest, and chaos scenario families,
//! emitting the comparative [`PolicyMatrix`] report committed as
//! `BENCH_policies.json` (storage utilization, chunk loss under faults,
//! migration radio energy, and the `balance.policy.*` telemetry).

use crate::indoor::suite_world_config;
use enviromic::core::{Mode, NodeConfig, PolicyKind};
use enviromic::harness::{forest_world_config, ExperimentRun};
use enviromic::metrics::mean;
use enviromic::runtime::EnergyModel;
use enviromic::sim::TraceEvent;
use enviromic::sweep::{run_sweep, JobInput, JobOutcome, ScenarioSpec, SweepPlan};
use enviromic::types::SimDuration;
use enviromic::workloads::{forest_scenario, indoor_scenario, ForestParams, IndoorParams};
use serde::{Deserialize, Serialize};

/// One ablation row: a label and its measured metrics.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Whole-run miss ratio.
    pub miss: f64,
    /// Final stored-data redundancy.
    pub redundancy: f64,
    /// Total radio packets sent.
    pub packets: u64,
    /// Standard deviation of final per-node occupancy (chunks).
    pub occupancy_stddev: f64,
}

fn row_from_run(label: &str, run: &ExperimentRun, duration: f64) -> AblationRow {
    let exp = run.experiment();
    let packets = run
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::MessageSent { .. }))
        .count() as u64;
    let occupancy = exp.occupancy_at(duration);
    let occ_f: Vec<f64> = occupancy.iter().map(|&u| u as f64).collect();
    let m = mean(&occ_f);
    let var = occ_f.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / occ_f.len().max(1) as f64;
    AblationRow {
        label: label.to_owned(),
        miss: exp.miss_ratio(duration),
        redundancy: exp
            .redundancy_series(duration, duration)
            .last()
            .map_or(0.0, |p| p.1),
        packets,
        occupancy_stddev: var.sqrt(),
    }
}

fn base_cfg() -> NodeConfig {
    NodeConfig::default()
        .with_mode(Mode::Full)
        .with_flash_chunks(650)
        .with_beta_max(2.0)
}

/// Runs the ablation battery on up to one worker per configuration.
/// `duration` of 2200 s keeps contrasts visible in reasonable time.
#[must_use]
pub fn run(seed: u64, duration: f64) -> Vec<AblationRow> {
    run_jobs(seed, duration, usize::MAX)
}

/// Runs the ablation battery as one sweep on `jobs` worker threads.
#[must_use]
pub fn run_jobs(seed: u64, duration: f64, jobs: usize) -> Vec<AblationRow> {
    let configs: Vec<(&str, NodeConfig)> = vec![
        ("full (reference)", base_cfg()),
        (
            "prelude 1s",
            base_cfg().with_prelude(SimDuration::from_secs_f64(1.0)),
        ),
        ("no piggybacking", {
            let mut c = base_cfg();
            c.piggybacking = false;
            c
        }),
        ("global hints", {
            let mut c = base_cfg();
            c.global_balance_hints = true;
            c
        }),
        ("replication x2", {
            let mut c = base_cfg();
            c.replication_factor = 2;
            c
        }),
        ("margin 30 (stricter)", {
            let mut c = base_cfg();
            c.detect_margin = 30.0;
            c
        }),
        ("margin 35 (deaf)", {
            let mut c = base_cfg();
            c.detect_margin = 35.0;
            c
        }),
    ];
    let labels: Vec<&str> = configs.iter().map(|(label, _)| *label).collect();
    let specs = configs
        .into_iter()
        .map(|(label, cfg)| {
            let params = IndoorParams {
                duration_secs: duration,
                ..IndoorParams::default()
            };
            ScenarioSpec::new(label, move |seed| JobInput {
                scenario: indoor_scenario(&params, seed),
                node_cfg: cfg.clone(),
                world_cfg: suite_world_config(seed),
                drain_secs: 20.0,
                faults: enviromic_sim::FaultPlan::new(),
            })
        })
        .collect();
    let out = run_sweep(&SweepPlan::new(vec![seed], specs), jobs);
    labels
        .into_iter()
        .zip(&out.jobs)
        .map(|(label, job)| row_from_run(label, &job.run, duration))
        .collect()
}

/// Renders the ablation table.
#[must_use]
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::from(
        "Ablations — indoor workload, full system unless noted\n\n\
         configuration             miss    redund   packets   occ-stddev\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:<22} {:>6.3}  {:>7.3}  {:>8}  {:>10.1}\n",
            r.label, r.miss, r.redundancy, r.packets, r.occupancy_stddev
        ));
    }
    out
}

// ----- storage-policy matrix (BalancePolicy head-to-head) ---------------------

/// Flash capacity used by the policy matrix: small enough that the
/// workloads pressure storage within a few hundred seconds, so the
/// policies actually diverge (drops vs migrations vs redundant copies).
pub const POLICY_FLASH_CHUNKS: u32 = 180;

/// The message kinds that make up the migration choreography; their
/// transmit time prices the `migration_energy_mj` column.
const MIGRATION_KINDS: [&str; 4] = ["MIGRATE_OFFER", "MIGRATE_ACCEPT", "BULK_DATA", "BULK_ACK"];

fn policy_cfg(kind: PolicyKind) -> NodeConfig {
    NodeConfig::default()
        .with_mode(Mode::Full)
        .with_flash_chunks(POLICY_FLASH_CHUNKS)
        .with_policy(kind)
}

/// One (scenario family × policy × seed) cell of the policy matrix.
///
/// Deliberately free of wall-clock fields: the whole report is a pure
/// function of the plan, so CI regenerates it at different worker counts
/// and byte-diffs the files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRow {
    /// Scenario family (`indoor`, `forest`, `chaos-indoor`).
    pub scenario: String,
    /// Policy name (see [`PolicyKind::name`]).
    pub policy: String,
    /// The run's seed.
    pub seed: u64,
    /// Trace digest as `0x`-prefixed hex (the determinism fingerprint).
    pub digest: String,
    /// Trace event count.
    pub events: u64,
    /// Mean occupied fraction of flash across nodes at the end of the run.
    pub storage_utilization: f64,
    /// Standard deviation of final per-node occupancy (chunks) — the
    /// balance quality measure of Fig. 13.
    pub occupancy_stddev: f64,
    /// Whole-run recording miss ratio.
    pub miss_ratio: f64,
    /// Chunks dropped on the floor because the local store was full.
    pub chunks_dropped: u64,
    /// Chunks held across all stores at the end of the run.
    pub chunks_stored: u64,
    /// `dropped / (dropped + stored)` — the chunk-loss measure (redundant
    /// copies count as stored: extra copies are extra retained data).
    pub loss_ratio: f64,
    /// Chunks acknowledged out over migration sessions.
    pub chunks_migrated: u64,
    /// Chunks left duplicated by abandoned sessions (lost ACKs).
    pub duplicated_chunks: u64,
    /// Packets of the migration choreography (offer/accept/data/ack).
    pub migration_packets: u64,
    /// Transmit energy of those packets in millijoules, priced with the
    /// default [`EnergyModel`] at 250 kbps.
    pub migration_energy_mj: f64,
    /// `balance.policy.<name>.offers`.
    pub policy_offers: u64,
    /// `balance.policy.<name>.holds` (decision ticks that kept data).
    pub policy_holds: u64,
    /// `balance.policy.<name>.inbound_accepted`.
    pub policy_inbound_accepted: u64,
    /// `balance.policy.<name>.inbound_rejected`.
    pub policy_inbound_rejected: u64,
    /// `balance.policy.<name>.chunks_retained` (deliberate replicas).
    pub policy_chunks_retained: u64,
    /// `balance.policy.<name>.sessions_closed`.
    pub policy_sessions_closed: u64,
}

/// Per (scenario family × policy) aggregate: seed-means of the headline
/// columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySummary {
    /// Scenario family.
    pub scenario: String,
    /// Policy name.
    pub policy: String,
    /// Seeds aggregated.
    pub runs: u64,
    /// Mean storage utilization.
    pub storage_utilization: f64,
    /// Mean occupancy standard deviation.
    pub occupancy_stddev: f64,
    /// Mean miss ratio.
    pub miss_ratio: f64,
    /// Mean chunk-loss ratio.
    pub loss_ratio: f64,
    /// Mean chunks migrated per run.
    pub chunks_migrated: f64,
    /// Mean migration transmit energy, millijoules.
    pub migration_energy_mj: f64,
}

/// The comparative storage-policy report (`BENCH_policies.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyMatrix {
    /// Per-run scenario duration, seconds.
    pub duration_secs: f64,
    /// Seeds each (scenario × policy) cell was run at.
    pub seeds: Vec<u64>,
    /// Per-node flash capacity used, chunks.
    pub flash_chunks: u64,
    /// Every cell, plan-ordered (scenario-major, then policy, then seed).
    pub rows: Vec<PolicyRow>,
    /// Seed-averaged comparison per (scenario × policy).
    pub summary: Vec<PolicySummary>,
}

impl PolicyMatrix {
    /// Serializes the report as indented JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::Serialize::to_value(self).to_json_pretty()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error string for malformed JSON or mismatched shape.
    pub fn from_json(text: &str) -> Result<PolicyMatrix, String> {
        let value = serde::Value::from_json(text).map_err(|e| e.to_string())?;
        serde::Deserialize::from_value(&value).map_err(|e: serde::DeError| e.to_string())
    }

    /// Renders the seed-averaged comparison table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Storage-policy ablation (seed means)\n\n\
             scenario       policy         util   occ-sd    miss    loss   migr/run   energy(mJ)\n",
        );
        let mut last_scenario = "";
        for s in &self.summary {
            if s.scenario != last_scenario && !last_scenario.is_empty() {
                out.push('\n');
            }
            last_scenario = &s.scenario;
            out.push_str(&format!(
                "  {:<12} {:<13} {:>6.3}  {:>7.1}  {:>6.3}  {:>6.3}  {:>9.1}  {:>11.2}\n",
                s.scenario,
                s.policy,
                s.storage_utilization,
                s.occupancy_stddev,
                s.miss_ratio,
                s.loss_ratio,
                s.chunks_migrated,
                s.migration_energy_mj,
            ));
        }
        out
    }
}

fn policy_row(scenario: &str, kind: PolicyKind, job: &JobOutcome, duration: f64) -> PolicyRow {
    let exp = job.run.experiment();
    let energy = EnergyModel::default();
    let (mut migration_packets, mut migration_energy_mj) = (0u64, 0.0f64);
    let (mut chunks_migrated, mut duplicated_chunks) = (0u64, 0u64);
    for ev in job.run.trace.iter() {
        match ev {
            TraceEvent::MessageSent { kind, bytes, .. } if MIGRATION_KINDS.contains(kind) => {
                migration_packets += 1;
                let tx_secs = f64::from(*bytes) * 8.0 / 250_000.0;
                migration_energy_mj += energy.radio_tx_mw * tx_secs;
            }
            TraceEvent::Migrated {
                duplicated, chunks, ..
            } => {
                if *duplicated {
                    duplicated_chunks += u64::from(*chunks);
                } else {
                    chunks_migrated += u64::from(*chunks);
                }
            }
            _ => {}
        }
    }
    let occupancy = exp.occupancy_at(duration);
    let occ_f: Vec<f64> = occupancy.iter().map(|&u| u as f64).collect();
    let m = mean(&occ_f);
    let var = occ_f.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / occ_f.len().max(1) as f64;
    let chunks_stored: u64 = occupancy.iter().sum();
    let chunks_dropped = job
        .run
        .telemetry
        .counter("core.storage.chunks_dropped")
        .unwrap_or(0);
    let denom = chunks_dropped + chunks_stored;
    let policy_counter = |which: &str| {
        job.run
            .telemetry
            .counter(&format!("balance.policy.{}.{which}", kind.name()))
            .unwrap_or(0)
    };
    PolicyRow {
        scenario: scenario.to_owned(),
        policy: kind.name().to_owned(),
        seed: job.seed,
        digest: format!("{:#018x}", job.digest),
        events: job.events as u64,
        storage_utilization: m / f64::from(POLICY_FLASH_CHUNKS),
        occupancy_stddev: var.sqrt(),
        miss_ratio: exp.miss_ratio(duration),
        chunks_dropped,
        chunks_stored,
        loss_ratio: if denom == 0 {
            0.0
        } else {
            chunks_dropped as f64 / denom as f64
        },
        chunks_migrated,
        duplicated_chunks,
        migration_packets,
        migration_energy_mj,
        policy_offers: policy_counter("offers"),
        policy_holds: policy_counter("holds"),
        policy_inbound_accepted: policy_counter("inbound_accepted"),
        policy_inbound_rejected: policy_counter("inbound_rejected"),
        policy_chunks_retained: policy_counter("chunks_retained"),
        policy_sessions_closed: policy_counter("sessions_closed"),
    }
}

/// Builds one (scenario family × policy) sweep point.
fn policy_spec(family: &'static str, kind: PolicyKind, duration: f64) -> ScenarioSpec {
    let label = format!("{family}+{}", kind.name());
    match family {
        "forest" => ScenarioSpec::new(label, move |seed| {
            let params = ForestParams {
                duration_secs: duration,
                ..ForestParams::default()
            };
            // Forest worlds do not snapshot occupancy by default; the
            // matrix needs the polls for its utilization columns.
            let mut world_cfg = forest_world_config(seed);
            world_cfg.occupancy_snapshot_period = Some(SimDuration::from_secs_f64(60.0));
            JobInput {
                scenario: forest_scenario(&params, seed),
                node_cfg: policy_cfg(kind),
                world_cfg,
                drain_secs: 20.0,
                faults: enviromic_sim::FaultPlan::new(),
            }
        }),
        _ => ScenarioSpec::new(label, move |seed| {
            let params = IndoorParams {
                duration_secs: duration,
                ..IndoorParams::default()
            };
            let scenario = indoor_scenario(&params, seed);
            let faults = if family == "chaos-indoor" {
                enviromic_sim::FaultPlan::chaos(
                    seed,
                    scenario.topology.positions().len(),
                    SimDuration::from_secs_f64(duration),
                )
            } else {
                enviromic_sim::FaultPlan::new()
            };
            JobInput {
                scenario,
                node_cfg: policy_cfg(kind),
                world_cfg: suite_world_config(seed),
                drain_secs: 20.0,
                faults,
            }
        }),
    }
}

/// Scenario families the policy matrix sweeps: the two deployment
/// workloads plus the chaos variant, so "loss under faults" is measured
/// under an actual fault schedule.
pub const POLICY_SCENARIOS: [&str; 3] = ["indoor", "forest", "chaos-indoor"];

/// Runs every [`BalancePolicy`](enviromic::core::BalancePolicy) through
/// the scenario families at every seed, on `jobs` workers. The result is
/// deterministic: the same seeds produce a byte-identical report at any
/// worker count.
#[must_use]
pub fn run_policy_matrix(seeds: &[u64], duration: f64, jobs: usize) -> PolicyMatrix {
    let mut specs = Vec::new();
    let mut cells: Vec<(&str, PolicyKind)> = Vec::new();
    for family in POLICY_SCENARIOS {
        for kind in PolicyKind::ALL {
            specs.push(policy_spec(family, kind, duration));
            cells.push((family, kind));
        }
    }
    let out = run_sweep(&SweepPlan::new(seeds.to_vec(), specs), jobs);
    // Jobs come back scenario-major in plan order: all seeds of cell 0,
    // then all seeds of cell 1, ...
    let rows: Vec<PolicyRow> = cells
        .iter()
        .enumerate()
        .flat_map(|(i, &(family, kind))| {
            out.jobs[i * seeds.len()..(i + 1) * seeds.len()]
                .iter()
                .map(move |job| policy_row(family, kind, job, duration))
        })
        .collect();
    let summary = cells
        .iter()
        .map(|&(family, kind)| {
            let cell: Vec<&PolicyRow> = rows
                .iter()
                .filter(|r| r.scenario == family && r.policy == kind.name())
                .collect();
            let n = cell.len().max(1) as f64;
            let avg = |f: &dyn Fn(&PolicyRow) -> f64| cell.iter().map(|r| f(r)).sum::<f64>() / n;
            PolicySummary {
                scenario: family.to_owned(),
                policy: kind.name().to_owned(),
                runs: cell.len() as u64,
                storage_utilization: avg(&|r| r.storage_utilization),
                occupancy_stddev: avg(&|r| r.occupancy_stddev),
                miss_ratio: avg(&|r| r.miss_ratio),
                loss_ratio: avg(&|r| r.loss_ratio),
                chunks_migrated: avg(&|r| r.chunks_migrated as f64),
                migration_energy_mj: avg(&|r| r.migration_energy_mj),
            }
        })
        .collect();
    PolicyMatrix {
        duration_secs: duration,
        seeds: seeds.to_vec(),
        flash_chunks: u64::from(POLICY_FLASH_CHUNKS),
        rows,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_ablation_battery_runs() {
        let rows = run(5, 400.0);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.miss >= 0.0 && r.miss <= 1.0, "{r:?}");
        }
        // Piggybacking saves packets.
        let reference = rows.iter().find(|r| r.label.contains("reference")).unwrap();
        let no_piggy = rows.iter().find(|r| r.label.contains("piggy")).unwrap();
        assert!(
            no_piggy.packets > reference.packets,
            "piggybacking should reduce packet count: {} vs {}",
            no_piggy.packets,
            reference.packets
        );
    }

    #[test]
    fn policy_matrix_is_deterministic_and_contrasts_policies() {
        let seeds = [11, 12];
        let serial = run_policy_matrix(&seeds, 150.0, 1);
        let pooled = run_policy_matrix(&seeds, 150.0, 4);
        // Byte-identical report regardless of worker count — the property
        // CI enforces on BENCH_policies.json.
        assert_eq!(serial, pooled);
        assert_eq!(serial.to_json(), pooled.to_json());
        assert_eq!(
            serial.rows.len(),
            POLICY_SCENARIOS.len() * PolicyKind::ALL.len() * seeds.len()
        );
        let back = PolicyMatrix::from_json(&serial.to_json()).expect("parses");
        assert_eq!(back, serial);

        for r in &serial.rows {
            assert!((0.0..=1.0).contains(&r.storage_utilization), "{r:?}");
            assert!((0.0..=1.0).contains(&r.loss_ratio), "{r:?}");
            // The no-migration baseline really does switch migration off.
            if r.policy == "no-migration" {
                assert_eq!(r.migration_packets, 0, "{r:?}");
                assert_eq!(r.chunks_migrated, 0, "{r:?}");
                assert_eq!(r.migration_energy_mj, 0.0, "{r:?}");
            }
        }
        let rendered = serial.render();
        assert!(rendered.contains("no-migration"));
        assert!(rendered.contains("chaos-indoor"));
    }
}
