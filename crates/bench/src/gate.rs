//! Telemetry regression gate: compares a run's [`TelemetryReport`]
//! against a committed baseline with per-metric tolerance bands.
//!
//! The determinism suite pins *traces* bit-for-bit; this gate pins the
//! *metrics* — a refactor that keeps the digest but silently doubles
//! `net.bulk.retries` or halves `core.tasks.accepted` gets caught here.
//! CI captures a baseline once (`telemetry-diff --write`), commits it,
//! and every subsequent run diffs against it:
//!
//! ```text
//! cargo run -p enviromic-bench --bin telemetry-diff -- \
//!     --baseline BASELINE_telemetry.json --current target/bench/BENCH_sweep.json
//! ```
//!
//! A metric drifts when `|current - baseline| > abs_tol + rel_tol * |baseline|`,
//! with the band chosen by the longest [`ToleranceBand`] prefix matching the
//! metric name (falling back to the baseline's defaults). Wall-clock
//! measurements (`sim.dispatch_us`, spans) are skipped by default — they
//! are the one legitimately non-deterministic part of a report.

use enviromic_telemetry::TelemetryReport;
use serde::{Deserialize, Serialize};

/// A tolerance override for every metric whose name starts with `prefix`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToleranceBand {
    /// Metric-name prefix the band applies to (longest match wins).
    pub prefix: String,
    /// Allowed relative drift (fraction of the baseline value).
    pub rel_tol: f64,
    /// Allowed absolute drift, added on top of the relative band.
    pub abs_tol: f64,
}

/// A committed metric baseline: the reference report plus the tolerance
/// policy to judge future runs by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryBaseline {
    /// Relative tolerance for metrics without a matching band.
    pub default_rel_tol: f64,
    /// Absolute tolerance for metrics without a matching band.
    pub default_abs_tol: f64,
    /// Name prefixes excluded from the diff entirely (wall-clock noise).
    pub skip: Vec<String>,
    /// Per-prefix tolerance overrides.
    pub tolerances: Vec<ToleranceBand>,
    /// The reference report.
    pub report: TelemetryReport,
}

impl TelemetryBaseline {
    /// Wraps `report` with the default policy: 2% relative drift, an
    /// absolute floor of 2.0 (so tiny counters don't trip on ±1), and
    /// wall-clock metrics skipped.
    #[must_use]
    pub fn capture(report: TelemetryReport) -> TelemetryBaseline {
        TelemetryBaseline {
            default_rel_tol: 0.02,
            default_abs_tol: 2.0,
            skip: vec!["sim.dispatch_us".into()],
            tolerances: Vec::new(),
            report,
        }
    }

    /// Serializes the baseline as indented JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::Serialize::to_value(self).to_json_pretty()
    }

    /// Parses a baseline back from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error string for malformed JSON or mismatched shape.
    pub fn from_json(text: &str) -> Result<TelemetryBaseline, String> {
        let value = serde::Value::from_json(text).map_err(|e| e.to_string())?;
        serde::Deserialize::from_value(&value).map_err(|e: serde::DeError| e.to_string())
    }

    /// The `(rel_tol, abs_tol)` band for `metric`: the longest matching
    /// tolerance prefix, or the defaults.
    #[must_use]
    pub fn band(&self, metric: &str) -> (f64, f64) {
        self.tolerances
            .iter()
            .filter(|t| metric.starts_with(t.prefix.as_str()))
            .max_by_key(|t| t.prefix.len())
            .map_or((self.default_rel_tol, self.default_abs_tol), |t| {
                (t.rel_tol, t.abs_tol)
            })
    }

    fn skipped(&self, metric: &str) -> bool {
        self.skip.iter().any(|p| metric.starts_with(p.as_str()))
    }
}

/// One metric outside its tolerance band.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Drift {
    /// The drifting metric (histograms report as `name.count` / `name.mean`).
    pub metric: String,
    /// Baseline value (0 when the metric is new).
    pub baseline: f64,
    /// Current value (0 when the metric disappeared).
    pub current: f64,
    /// The allowed absolute deviation the delta exceeded.
    pub allowed: f64,
}

/// Checks one scalar against the baseline's band for it; `None` when the
/// value is within tolerance.
fn check(baseline: &TelemetryBaseline, metric: &str, base: f64, cur: f64) -> Option<Drift> {
    let (rel, abs) = baseline.band(metric);
    let allowed = abs + rel * base.abs();
    ((cur - base).abs() > allowed).then(|| Drift {
        metric: metric.to_string(),
        baseline: base,
        current: cur,
        allowed,
    })
}

/// Diffs `current` against `baseline`, returning every metric outside its
/// band — including metrics that disappeared or newly appeared (compared
/// against 0). Counters and gauges compare by value; histograms by
/// `count` and `mean`; spans are wall-clock and never compared.
#[must_use]
pub fn diff(baseline: &TelemetryBaseline, current: &TelemetryReport) -> Vec<Drift> {
    let base = &baseline.report;
    let mut drifts = Vec::new();
    let mut names: Vec<&str> = Vec::new();

    names.extend(base.counters.iter().map(|(n, _)| n.as_str()));
    names.extend(current.counters.iter().map(|(n, _)| n.as_str()));
    names.sort_unstable();
    names.dedup();
    for name in names.drain(..) {
        if baseline.skipped(name) {
            continue;
        }
        #[allow(clippy::cast_precision_loss)]
        let (b, c) = (
            base.counter(name).unwrap_or(0) as f64,
            current.counter(name).unwrap_or(0) as f64,
        );
        drifts.extend(check(baseline, name, b, c));
    }

    names.extend(base.gauges.iter().map(|(n, _)| n.as_str()));
    names.extend(current.gauges.iter().map(|(n, _)| n.as_str()));
    names.sort_unstable();
    names.dedup();
    for name in names.drain(..) {
        if baseline.skipped(name) {
            continue;
        }
        let (b, c) = (
            base.gauge(name).unwrap_or(0.0),
            current.gauge(name).unwrap_or(0.0),
        );
        drifts.extend(check(baseline, name, b, c));
    }

    names.extend(base.histograms.iter().map(|(n, _)| n.as_str()));
    names.extend(current.histograms.iter().map(|(n, _)| n.as_str()));
    names.sort_unstable();
    names.dedup();
    for name in names {
        if baseline.skipped(name) {
            continue;
        }
        let empty = enviromic_telemetry::HistogramSnapshot::default();
        let b = base.histogram(name).unwrap_or(&empty);
        let c = current.histogram(name).unwrap_or(&empty);
        #[allow(clippy::cast_precision_loss)]
        drifts.extend(check(
            baseline,
            &format!("{name}.count"),
            b.count as f64,
            c.count as f64,
        ));
        drifts.extend(check(baseline, &format!("{name}.mean"), b.mean(), c.mean()));
    }

    drifts
}

/// Renders drifts as an aligned table, one metric per line.
#[must_use]
pub fn render_drifts(drifts: &[Drift]) -> String {
    let mut out = String::new();
    for d in drifts {
        let delta = d.current - d.baseline;
        out.push_str(&format!(
            "  {:<40} baseline {:>14.3}  current {:>14.3}  delta {delta:>+12.3} (allowed +/-{:.3})\n",
            d.metric, d.baseline, d.current, d.allowed
        ));
    }
    out
}

/// Proves the gate can fail: injects drift into a copy of the baseline's
/// own report — one counter pushed **up**, another dragged **down**, and
/// a gauge pushed up — and checks the diff flags every injection (and
/// that the unmodified report passes). A gate that only fires on
/// inflation would wave through a refactor that silently *loses* work,
/// so both directions are exercised. Returns the injected drifts for
/// display.
///
/// # Errors
///
/// Returns a description of the failure when the gate misbehaves.
pub fn self_test(baseline: &TelemetryBaseline) -> Result<Vec<Drift>, String> {
    let clean = diff(baseline, &baseline.report);
    if !clean.is_empty() {
        return Err(format!(
            "baseline drifts against itself:\n{}",
            render_drifts(&clean)
        ));
    }

    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let past_band = |baseline: &TelemetryBaseline, name: &str, v: u64| -> u64 {
        let (rel, abs) = baseline.band(name);
        (abs + rel * (v as f64)).ceil() as u64 + 1
    };

    let mut doctored = baseline.report.clone();
    let mut expected = 0;
    let mut bumped_up: Option<String> = None;
    if let Some((name, v)) = doctored
        .counters
        .iter_mut()
        .find(|(n, v)| !baseline.skipped(n) && *v > 0)
    {
        *v += 2 * past_band(baseline, name, *v);
        bumped_up = Some(name.clone());
        expected += 1;
    }
    if let Some((name, v)) = doctored.counters.iter_mut().find(|(n, v)| {
        !baseline.skipped(n)
            && Some(n.as_str()) != bumped_up.as_deref()
            && *v > past_band(baseline, n, *v)
    }) {
        *v -= past_band(baseline, name, *v) + 1;
        expected += 1;
    }
    if let Some((name, v)) = doctored
        .gauges
        .iter_mut()
        .find(|(n, _)| !baseline.skipped(n))
    {
        let (rel, abs) = baseline.band(name);
        *v += 2.0 * (abs + rel * v.abs()) + 1.0;
        expected += 1;
    }
    if expected == 0 {
        return Err("baseline has no metrics to doctor".into());
    }
    let caught = diff(baseline, &doctored);
    if caught.len() == expected {
        Ok(caught)
    } else {
        Err(format!(
            "injected {expected} drifts, gate caught {}:\n{}",
            caught.len(),
            render_drifts(&caught)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetryReport {
        let reg = enviromic_telemetry::Registry::new();
        reg.counter("core.tasks.accepted").add(120);
        reg.counter("net.bulk.retries").add(7);
        reg.counter("sim.dispatch_us").add(987_654);
        reg.gauge("core.balance.beta").set(1.35);
        let h = reg.histogram("net.task.delay_ms");
        for v in [10.0, 20.0, 30.0, 40.0] {
            h.observe(v);
        }
        reg.report()
    }

    #[test]
    fn identical_report_passes() {
        let baseline = TelemetryBaseline::capture(sample());
        assert!(diff(&baseline, &sample()).is_empty());
    }

    #[test]
    fn drift_beyond_band_is_flagged_with_direction() {
        let baseline = TelemetryBaseline::capture(sample());
        let mut cur = sample();
        // 120 -> 130 is ~8.3% drift, far past 2% + 2.0.
        cur.counters
            .iter_mut()
            .find(|(n, _)| n == "core.tasks.accepted")
            .unwrap()
            .1 = 130;
        let drifts = diff(&baseline, &cur);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "core.tasks.accepted");
        assert_eq!(drifts[0].baseline, 120.0);
        assert_eq!(drifts[0].current, 130.0);
        let rendered = render_drifts(&drifts);
        assert!(rendered.contains("core.tasks.accepted"));
        assert!(rendered.contains("+10.000"));
    }

    #[test]
    fn downward_counter_drift_is_flagged() {
        let baseline = TelemetryBaseline::capture(sample());
        let mut cur = sample();
        // 120 -> 100: losing work drifts just as hard as inventing it.
        cur.counters
            .iter_mut()
            .find(|(n, _)| n == "core.tasks.accepted")
            .unwrap()
            .1 = 100;
        let drifts = diff(&baseline, &cur);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "core.tasks.accepted");
        assert!(render_drifts(&drifts).contains("-20.000"));
    }

    #[test]
    fn small_drift_within_band_passes() {
        let baseline = TelemetryBaseline::capture(sample());
        let mut cur = sample();
        // 120 -> 122 sits exactly on the 2% + 2.0 edge (allowed 4.4).
        cur.counters
            .iter_mut()
            .find(|(n, _)| n == "core.tasks.accepted")
            .unwrap()
            .1 = 122;
        assert!(diff(&baseline, &cur).is_empty());
    }

    #[test]
    fn missing_and_new_metrics_are_drifts() {
        let baseline = TelemetryBaseline::capture(sample());
        let mut cur = sample();
        cur.counters.retain(|(n, _)| n != "net.bulk.retries");
        cur.gauges.push(("core.new.gauge".into(), 50.0));
        let drifts = diff(&baseline, &cur);
        let metrics: Vec<&str> = drifts.iter().map(|d| d.metric.as_str()).collect();
        assert!(metrics.contains(&"net.bulk.retries"), "{metrics:?}");
        assert!(metrics.contains(&"core.new.gauge"), "{metrics:?}");
    }

    #[test]
    fn skip_prefixes_suppress_wall_clock_noise() {
        let baseline = TelemetryBaseline::capture(sample());
        let mut cur = sample();
        cur.counters
            .iter_mut()
            .find(|(n, _)| n == "sim.dispatch_us")
            .unwrap()
            .1 = 5;
        assert!(diff(&baseline, &cur).is_empty(), "wall-clock skipped");
    }

    #[test]
    fn histogram_count_and_mean_are_gated() {
        let baseline = TelemetryBaseline::capture(sample());
        let mut cur = sample();
        let h = &mut cur
            .histograms
            .iter_mut()
            .find(|(n, _)| n == "net.task.delay_ms")
            .unwrap()
            .1;
        h.sum *= 2.0; // mean doubles, count unchanged
        let drifts = diff(&baseline, &cur);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "net.task.delay_ms.mean");
    }

    #[test]
    fn longest_prefix_band_wins() {
        let mut baseline = TelemetryBaseline::capture(sample());
        baseline.tolerances = vec![
            ToleranceBand {
                prefix: "core.".into(),
                rel_tol: 0.0,
                abs_tol: 0.0,
            },
            ToleranceBand {
                prefix: "core.tasks.".into(),
                rel_tol: 1.0,
                abs_tol: 0.0,
            },
        ];
        assert_eq!(baseline.band("core.tasks.accepted"), (1.0, 0.0));
        assert_eq!(baseline.band("core.balance.beta"), (0.0, 0.0));
        assert_eq!(baseline.band("net.bulk.retries"), (0.02, 2.0));
        let mut cur = sample();
        // 50% over: fine under the loose core.tasks. band...
        cur.counters
            .iter_mut()
            .find(|(n, _)| n == "core.tasks.accepted")
            .unwrap()
            .1 = 180;
        assert!(diff(&baseline, &cur).is_empty());
        // ...but the tight core. band catches any gauge wiggle.
        cur.gauges[0].1 += 0.001;
        assert_eq!(diff(&baseline, &cur).len(), 1);
    }

    #[test]
    fn baseline_json_round_trips() {
        let mut baseline = TelemetryBaseline::capture(sample());
        baseline.tolerances.push(ToleranceBand {
            prefix: "flash.".into(),
            rel_tol: 0.1,
            abs_tol: 5.0,
        });
        let back = TelemetryBaseline::from_json(&baseline.to_json()).expect("parses");
        assert_eq!(back, baseline);
    }

    #[test]
    fn self_test_catches_injected_drift_in_both_directions() {
        let baseline = TelemetryBaseline::capture(sample());
        let caught = self_test(&baseline).expect("gate works");
        assert_eq!(caught.len(), 3, "{}", render_drifts(&caught));
        assert!(
            caught.iter().any(|d| d.current > d.baseline),
            "an upward injection was caught"
        );
        assert!(
            caught.iter().any(|d| d.current < d.baseline),
            "a downward injection was caught"
        );
    }
}
