//! The §IV-C outdoor deployment figures.
//!
//! One 3-hour forest run drives Fig. 16 (recorded data over time, with the
//! two activity spikes), Fig. 17 (spatial contour of data generated per
//! location, showing the road and trail ridges), and Fig. 18 (where the
//! hotspot node's data migrated).

use enviromic::core::NodeConfig;
use enviromic::harness::{forest_world_config, run_scenario, ExperimentRun};
use enviromic::metrics::ContourGrid;
use enviromic::types::{NodeId, SimDuration};
use enviromic::workloads::{forest_scenario, wall_clock_label, ForestParams};

/// The completed outdoor run.
#[derive(Debug)]
pub struct OutdoorRun {
    /// The simulation run.
    pub run: ExperimentRun,
    /// Experiment duration, seconds.
    pub duration_secs: f64,
}

/// Runs the forest deployment with the full system. `duration_secs` is
/// 10 800 (3 h) in the paper.
#[must_use]
pub fn run(seed: u64, duration_secs: f64) -> OutdoorRun {
    let params = ForestParams {
        duration_secs,
        ..ForestParams::default()
    };
    let scenario = forest_scenario(&params, seed);
    // Full 0.5 MB stores, like the deployed motes.
    let cfg = NodeConfig::default()
        .with_flash_chunks(2048)
        .with_beta_max(2.0);
    let mut wcfg = forest_world_config(seed);
    wcfg.acoustics.mic_gain_spread = 0.10;
    wcfg.occupancy_snapshot_period = Some(SimDuration::from_secs_f64(300.0));
    let run = run_scenario(scenario, &cfg, wcfg, 30.0);
    OutdoorRun { run, duration_secs }
}

impl OutdoorRun {
    /// Fig. 16: seconds of audio recorded network-wide per one-minute bin.
    #[must_use]
    pub fn fig16_activity_per_minute(&self) -> Vec<(f64, f64)> {
        let exp = self.run.experiment();
        let minutes = (self.duration_secs / 60.0) as usize;
        (0..minutes)
            .map(|m| {
                let from = m as f64 * 60.0;
                (from, exp.recorded_secs_between(from, from + 60.0))
            })
            .collect()
    }

    /// Fig. 17: contour of audio bytes recorded per location.
    #[must_use]
    pub fn fig17_generated_contour(&self) -> ContourGrid {
        let topo = &self.run.scenario.topology;
        let bytes = self.run.experiment().per_node_recorded_bytes();
        let cells: Vec<(usize, usize)> = (0..topo.len()).map(|i| topo.cell_of(i)).collect();
        let vals: Vec<f64> = bytes.iter().map(|&b| b as f64).collect();
        ContourGrid::from_node_values(topo.cols, topo.rows, &cells, &vals)
    }

    /// Fig. 18: the hotspot recorder and the final distribution (KB per
    /// node cell) of the data it recorded.
    #[must_use]
    pub fn fig18_migration_map(&self) -> (NodeId, ContourGrid) {
        let exp = self.run.experiment();
        let hotspot = exp.hotspot_recorder().unwrap_or(NodeId(0));
        let holdings = exp.final_holdings_of_origin(hotspot);
        let topo = &self.run.scenario.topology;
        let cells: Vec<(usize, usize)> = (0..topo.len()).map(|i| topo.cell_of(i)).collect();
        let vals: Vec<f64> = holdings.iter().map(|&b| b as f64 / 1024.0).collect();
        (
            hotspot,
            ContourGrid::from_node_values(topo.cols, topo.rows, &cells, &vals),
        )
    }
}

/// Renders Fig. 16 as the paper's time series (one-minute bins, labelled
/// with wall-clock times starting at 10:45).
#[must_use]
pub fn render_fig16(series: &[(f64, f64)]) -> String {
    let mut out = String::from(
        "Fig. 16 — amount of acoustic event data over time\n\
         (seconds of audio recorded per minute, wall clock from 10:45)\n\n",
    );
    let max = series.iter().map(|&(_, v)| v).fold(1e-9, f64::max);
    for &(from, v) in series {
        let bars = ((v / max) * 50.0).round() as usize;
        out.push_str(&format!(
            "  {} {:>7.1} |{}\n",
            wall_clock_label(from),
            v,
            "#".repeat(bars)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_outdoor_run_produces_activity() {
        // A 10-minute slice keeps the test fast while exercising the whole
        // pipeline.
        let outdoor = run(11, 600.0);
        let series = outdoor.fig16_activity_per_minute();
        assert_eq!(series.len(), 10);
        let total: f64 = series.iter().map(|&(_, v)| v).sum();
        assert!(total > 10.0, "almost nothing recorded: {total:.1} s");
        let contour = outdoor.fig17_generated_contour();
        assert!(contour.max() > 0.0);
    }
}
