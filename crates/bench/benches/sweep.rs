//! Criterion bench for the parallel sweep engine, doubling as the
//! generator of the machine-readable perf baseline `BENCH_sweep.json`.
//!
//! Two things happen here:
//!
//! 1. Criterion timings for a small sweep at 1 worker and at all
//!    available cores — the per-iteration numbers the terminal shows.
//! 2. One measured 8-seed × 2-scenario quick sweep at `--jobs 1` and at
//!    all cores, written as JSON (per-job digests, per-job and aggregate
//!    wall-clock, speedup) to `BENCH_sweep.json` in the workspace root —
//!    point 0 of the perf trajectory. The run also re-checks that both
//!    worker counts produced identical per-seed digests.

use criterion::{black_box, criterion_group, Criterion};
use enviromic::sweep::{run_sweep, SweepPlan, SweepSummary};
use serde::{Deserialize, Serialize};

/// Worker count for the "parallel" variants: every available core, floored
/// at 4 so the multi-worker path (and its digest-equality contract) is
/// exercised even on small CI hosts. Speedup over `jobs_1` then reflects
/// whatever parallelism the host actually has.
fn pool_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get().max(4))
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_4x2_30s");
    group.sample_size(10);
    for (label, workers) in [("jobs_1", 1), ("jobs_pool", pool_workers())] {
        group.bench_function(label, |b| {
            let plan = SweepPlan::quick(vec![42, 43, 44, 45]).with_duration(30.0);
            b.iter(|| black_box(run_sweep(&plan, workers).digests()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool);

/// The serialized baseline: the same sweep grid at both worker counts.
#[derive(Debug, Serialize, Deserialize)]
struct SweepBaseline {
    bench: String,
    runs: Vec<SweepSummary>,
}

/// Runs the quick sweep serially and pooled, checks digest equality, and
/// writes the combined baseline JSON.
fn emit_baseline() {
    let plan = SweepPlan::quick((42..50).collect());
    let serial = run_sweep(&plan, 1);
    let pooled = run_sweep(&plan, pool_workers());
    assert_eq!(
        serial.digests(),
        pooled.digests(),
        "per-seed digests must not depend on the worker count"
    );
    let baseline = SweepBaseline {
        bench: "quick_sweep_8x2_120s".into(),
        runs: vec![serial.summary(), pooled.summary()],
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    let json = serde::Serialize::to_value(&baseline).to_json_pretty();
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!(
        "baseline quick_sweep_8x2_120s: {:.3}s serial -> {:.3}s on {} workers ({:.2}x); wrote BENCH_sweep.json",
        serial.wall_secs,
        pooled.wall_secs,
        pooled.workers,
        serial.wall_secs / pooled.wall_secs.max(1e-9),
    );
}

fn main() {
    benches();
    emit_baseline();
}
