//! Criterion benches for the metrics pipeline (trace post-processing) and
//! waveform comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use enviromic::core::{Mode, NodeConfig};
use enviromic::harness::{indoor_world_config, run_scenario, ExperimentRun};
use enviromic::metrics::{amplitude_envelope, best_xcorr, IntervalSet};
use enviromic::workloads::{indoor_scenario, IndoorParams};

fn sample_run() -> ExperimentRun {
    let params = IndoorParams {
        duration_secs: 300.0,
        ..IndoorParams::default()
    };
    let scenario = indoor_scenario(&params, 5);
    let cfg = NodeConfig::default()
        .with_mode(Mode::Full)
        .with_flash_chunks(650);
    run_scenario(scenario, &cfg, indoor_world_config(5), 5.0)
}

fn bench_metrics(c: &mut Criterion) {
    let run = sample_run();
    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    group.bench_function("miss_ratio_series", |b| {
        b.iter(|| black_box(run.experiment().miss_ratio_series(300.0, 30.0)))
    });
    group.bench_function("redundancy_series", |b| {
        b.iter(|| black_box(run.experiment().redundancy_series(300.0, 30.0)))
    });
    group.bench_function("message_series", |b| {
        b.iter(|| {
            black_box(run.experiment().message_series(
                &["TASK_REQUEST", "TASK_CONFIRM", "BULK_DATA"],
                300.0,
                30.0,
            ))
        })
    });
    group.finish();
}

fn bench_intervals(c: &mut Criterion) {
    c.bench_function("interval_set_10k_adds", |b| {
        b.iter(|| {
            let mut s = IntervalSet::new();
            for i in 0..10_000u64 {
                let a = (i * 7919) % 1_000_000;
                s.add(a, a + 500);
            }
            black_box(s.total_len())
        })
    });
}

fn bench_waveform(c: &mut Criterion) {
    let a: Vec<u8> = (0..20_000)
        .map(|i| (128.0 + 80.0 * (i as f64 / 15.0).sin()) as u8)
        .collect();
    let b_sig: Vec<u8> = a.iter().map(|&s| s.saturating_add(2)).collect();
    c.bench_function("voice_envelope_xcorr", |bch| {
        bch.iter(|| {
            let ea = amplitude_envelope(black_box(&a), 136);
            let eb = amplitude_envelope(black_box(&b_sig), 136);
            black_box(best_xcorr(&ea, &eb, 8))
        })
    });
}

criterion_group!(benches, bench_metrics, bench_intervals, bench_waveform);
criterion_main!(benches);
