//! Criterion bench for the simulation-core hot loops the spatial index
//! replaced, doubling as the generator of the machine-readable perf
//! baseline `BENCH_world.json`.
//!
//! Three measurements per grid size (25 / 100 / 400 nodes):
//!
//! * **delivery** — resolving the in-range receiver set for a broadcast
//!   from every node in turn, via [`NodeGrid::query_sorted`] versus the
//!   brute-force O(nodes) scan the delivery loop used before;
//! * **sampling** — the per-node peak acoustic level via the precomputed
//!   [`AudibleIndex`] versus the full [`AcousticField`] source scan;
//! * **synthesis** — mixing one full audio block per audible node via the
//!   batched kernel ([`AcousticField::synthesize_batch`]) versus the
//!   per-sample `sample_from` loop it replaced, reported as ns/sample.
//!   Both paths consume identical canned noise and are asserted
//!   byte-identical before timing, so the row isolates the mixing kernel.
//!
//! `emit_baseline` re-times both paths with plain `Instant` loops and
//! writes per-size means and speedups to `BENCH_world.json` in the
//! workspace root, together with whole-event-loop ns/event rows for the
//! city-block workload at 1k–100k nodes (the timer-wheel scale ladder).
//! Set `WORLD_BENCH_QUICK=1` to skip the Criterion groups and only emit
//! the baseline (the CI mode).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use enviromic::sweep::ScenarioSpec;
use enviromic_sim::acoustics::{AcousticField, MixScratch};
use enviromic_sim::spatial::{AudibleIndex, NodeGrid};
use enviromic_sim::World;
use enviromic_types::{audio, Position, SimDuration, SimTime};
use enviromic_workloads::{large_grid_scenario, LargeGridParams, Scenario};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Radio range of the indoor world config — the delivery radius the
/// in-tree scenarios actually run with.
const RANGE_FT: f64 = 3.2;

/// Grid sizes under test: (cols, rows) giving 25, 100, and 400 nodes.
const SIZES: [(usize, usize); 3] = [(5, 5), (10, 10), (20, 20)];

/// The large-grid workload scaled down to `cols`×`rows`, keeping its
/// source schedule (8 static + 1 mobile).
fn scenario(cols: usize, rows: usize) -> Scenario {
    let params = LargeGridParams {
        cols,
        rows,
        ..LargeGridParams::default()
    };
    large_grid_scenario(&params, 42)
}

/// The receiver resolution the pre-index delivery loop performed: scan
/// every node, keep those in range (already in ascending index order).
fn brute_receivers(positions: &[Position], center: Position, range_ft: f64, out: &mut Vec<u32>) {
    out.clear();
    for (i, p) in positions.iter().enumerate() {
        if p.distance_to(center) <= range_ft {
            out.push(i as u32);
        }
    }
}

/// One full broadcast round via the grid: resolve receivers from every
/// node in turn. Returns the total receiver count as the live output.
fn grid_round(grid: &NodeGrid, positions: &[Position], out: &mut Vec<u32>) -> usize {
    let mut total = 0;
    for &p in positions {
        grid.query_sorted(p, RANGE_FT, out);
        total += out.len();
    }
    total
}

/// One full broadcast round via the brute-force scan.
fn brute_round(positions: &[Position], out: &mut Vec<u32>) -> usize {
    let mut total = 0;
    for &p in positions {
        brute_receivers(positions, p, RANGE_FT, out);
        total += out.len();
    }
    total
}

/// Sampling instants spread across the first minute of the scenario.
fn sample_times() -> Vec<SimTime> {
    (0..16)
        .map(|i| SimTime::ZERO + SimDuration::from_millis(i * 3750))
        .collect()
}

/// One sampling round via the audible index: peak level at every node at
/// every instant.
fn indexed_sampling_round(
    idx: &AudibleIndex,
    field: &AcousticField,
    positions: &[Position],
    times: &[SimTime],
) -> f64 {
    let mut acc = 0.0;
    for (ni, &p) in positions.iter().enumerate() {
        for &t in times {
            acc += idx.peak_level(field, ni, p, t);
        }
    }
    acc
}

/// One sampling round via the full-field source scan.
fn full_sampling_round(field: &AcousticField, positions: &[Position], times: &[SimTime]) -> f64 {
    let mut acc = 0.0;
    for &p in positions {
        for &t in times {
            acc += field.peak_level(p, t);
        }
    }
    acc
}

/// Samples per synthesized audio block — one chunk payload.
const BLOCK_SAMPLES: usize = audio::CHUNK_PAYLOAD_BYTES as usize;

/// Deterministic pseudo-noise vector standing in for the per-sample RNG
/// draws. Both synthesis paths consume the identical values, so the
/// comparison isolates the mixing kernel from RNG cost.
fn canned_noise() -> Vec<f64> {
    (0..BLOCK_SAMPLES)
        .map(|i| (i as f64 * 37.0) % 100.0 / 50.0 - 1.0)
        .collect()
}

/// The per-node synthesis work list: `(node index, position, block start)`
/// for every node whose candidate set is non-empty at that block. Nodes
/// out of earshot reduce both paths to a noise copy and would only dilute
/// the kernel measurement.
fn synth_work(
    idx: &AudibleIndex,
    positions: &[Position],
    times: &[SimTime],
) -> Vec<(usize, Position, SimTime)> {
    let mut work = Vec::new();
    let mut cand = Vec::new();
    for (ni, &p) in positions.iter().enumerate() {
        for &t0 in times {
            idx.block_sources(ni, t0, t0 + audio::chunk_duration(), &mut cand);
            if !cand.is_empty() {
                work.push((ni, p, t0));
            }
        }
    }
    work
}

/// One synthesis round through the batched kernel: every work item mixes
/// one full audio block. Returns a checksum as the live output.
fn synth_round_batched(
    field: &AcousticField,
    idx: &AudibleIndex,
    work: &[(usize, Position, SimTime)],
    noise: &[f64],
    cand: &mut Vec<u32>,
    scratch: &mut MixScratch,
    out: &mut Vec<u8>,
) -> u64 {
    let mut acc = 0u64;
    for &(ni, p, t0) in work {
        idx.block_sources(ni, t0, t0 + audio::chunk_duration(), cand);
        field.synthesize_batch(cand, p, t0.as_secs_f64(), noise, scratch, out);
        acc = acc.wrapping_add(u64::from(out[0]) + u64::from(out[noise.len() - 1]));
    }
    acc
}

/// One synthesis round through the per-sample reference path the batched
/// kernel replaced: `sample_from` once per sample.
fn synth_round_per_sample(
    field: &AcousticField,
    idx: &AudibleIndex,
    work: &[(usize, Position, SimTime)],
    noise: &[f64],
    cand: &mut Vec<u32>,
    out: &mut Vec<u8>,
) -> u64 {
    let mut acc = 0u64;
    for &(ni, p, t0) in work {
        idx.block_sources(ni, t0, t0 + audio::chunk_duration(), cand);
        let t0_s = t0.as_secs_f64();
        out.clear();
        out.extend(noise.iter().enumerate().map(|(i, &nz)| {
            let t_s = t0_s + i as f64 / audio::SAMPLE_RATE_HZ as f64;
            field.sample_from(cand, p, t_s, nz)
        }));
        acc = acc.wrapping_add(u64::from(out[0]) + u64::from(out[noise.len() - 1]));
    }
    acc
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery_round");
    for (cols, rows) in SIZES {
        let s = scenario(cols, rows);
        let positions = s.topology.positions().to_vec();
        let alive = vec![true; positions.len()];
        let grid = NodeGrid::build(&positions, &alive, RANGE_FT);
        let mut out = Vec::new();
        let n = positions.len();
        group.bench_function(BenchmarkId::new("grid", n), |b| {
            b.iter(|| black_box(grid_round(&grid, &positions, &mut out)));
        });
        group.bench_function(BenchmarkId::new("brute", n), |b| {
            b.iter(|| black_box(brute_round(&positions, &mut out)));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_round");
    let times = sample_times();
    for (cols, rows) in SIZES {
        let s = scenario(cols, rows);
        let positions = s.topology.positions().to_vec();
        let mut field = AcousticField::new();
        for src in &s.sources {
            field.add_source(src.clone()).expect("valid source");
        }
        let idx = AudibleIndex::build(&positions, &s.sources);
        let n = positions.len();
        group.bench_function(BenchmarkId::new("indexed", n), |b| {
            b.iter(|| black_box(indexed_sampling_round(&idx, &field, &positions, &times)));
        });
        group.bench_function(BenchmarkId::new("full_scan", n), |b| {
            b.iter(|| black_box(full_sampling_round(&field, &positions, &times)));
        });
    }
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis_block");
    let times = sample_times();
    let noise = canned_noise();
    for (cols, rows) in SIZES {
        let s = scenario(cols, rows);
        let positions = s.topology.positions().to_vec();
        let mut field = AcousticField::new();
        for src in &s.sources {
            field.add_source(src.clone()).expect("valid source");
        }
        let idx = AudibleIndex::build(&positions, &s.sources);
        let work = synth_work(&idx, &positions, &times);
        let mut cand = Vec::new();
        let mut scratch = MixScratch::new();
        let mut out = Vec::new();
        let n = positions.len();
        group.bench_function(BenchmarkId::new("batched", n), |b| {
            b.iter(|| {
                black_box(synth_round_batched(
                    &field,
                    &idx,
                    &work,
                    &noise,
                    &mut cand,
                    &mut scratch,
                    &mut out,
                ))
            });
        });
        group.bench_function(BenchmarkId::new("per_sample", n), |b| {
            b.iter(|| {
                black_box(synth_round_per_sample(
                    &field, &idx, &work, &noise, &mut cand, &mut out,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delivery, bench_sampling, bench_synthesis);

/// Times `f` with a warmup-then-measure loop and returns the best mean
/// ns/round over several repetitions (minimum-of-means damps scheduler
/// noise, which matters at the 25-node scale where a round is ~1 µs).
fn time_ns<F: FnMut() -> T, T>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        // Size the batch so one repetition takes ~20ms.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.02 / once) as usize).clamp(1, 1_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

/// One measured size in the baseline JSON.
#[derive(Debug, Serialize, Deserialize)]
struct WorldCase {
    nodes: usize,
    delivery_grid_ns: f64,
    delivery_brute_ns: f64,
    delivery_speedup: f64,
    sampling_indexed_ns: f64,
    sampling_full_ns: f64,
    sampling_speedup: f64,
    /// ns per synthesized sample through the batched mixing kernel.
    synth_batched_ns_per_sample: f64,
    /// ns per sample through the per-sample `sample_from` reference path.
    synth_per_sample_ns_per_sample: f64,
    synth_speedup: f64,
}

/// One whole-event-loop throughput row: the city workload run end to end
/// through the timer-wheel core at a given node count.
#[derive(Debug, Serialize, Deserialize)]
struct ScaleCase {
    nodes: usize,
    sim_secs: f64,
    events: u64,
    ns_per_event: f64,
}

/// The serialized baseline for `BENCH_world.json`.
#[derive(Debug, Serialize, Deserialize)]
struct WorldBaseline {
    bench: String,
    radio_range_ft: f64,
    cases: Vec<WorldCase>,
    /// Event-loop throughput on the city scale ladder (1k–100k nodes).
    scale: Vec<ScaleCase>,
}

/// Node counts of the city event-loop ladder. The 40k and 100k rungs ride
/// on sparse flash backing and the escape-coded node-ID wire format.
const SCALE_SIZES: [usize; 5] = [1_000, 4_000, 10_000, 40_000, 100_000];

/// Sim-time horizon of each city throughput run, seconds.
const SCALE_SIM_SECS: f64 = 10.0;

/// Runs the city workload end to end at `nodes` and returns its
/// throughput row. The setup (world build, spatial indexes) is excluded:
/// the row measures the event loop itself — queue scheduling, timer-wheel
/// cascades, delivery, and protocol dispatch.
fn scale_case(nodes: usize) -> ScaleCase {
    let input = ScenarioSpec::city(nodes, SCALE_SIM_SECS).build(42);
    let mut world = World::new(input.world_cfg);
    for &pos in input.scenario.topology.positions() {
        world.add_node(
            pos,
            Box::new(enviromic::core::EnviroMicNode::new(input.node_cfg.clone())),
        );
    }
    for src in &input.scenario.sources {
        world.add_source(src.clone()).expect("valid source");
    }
    // Dispatch one event so startup (index builds, on_start fan-out) is
    // settled before the clock starts.
    world.run_for_secs(0.0);
    let warmup = world.events_dispatched();
    let t0 = Instant::now();
    world.run_for_secs(SCALE_SIM_SECS);
    let wall = t0.elapsed().as_secs_f64();
    let events = world.events_dispatched() - warmup;
    ScaleCase {
        nodes,
        sim_secs: SCALE_SIM_SECS,
        events,
        ns_per_event: wall * 1e9 / events.max(1) as f64,
    }
}

/// Measures every size with plain `Instant` loops and writes the combined
/// baseline JSON to the workspace root.
fn emit_baseline() {
    let times = sample_times();
    let mut cases = Vec::new();
    for (cols, rows) in SIZES {
        let s = scenario(cols, rows);
        let positions = s.topology.positions().to_vec();
        let alive = vec![true; positions.len()];
        let grid = NodeGrid::build(&positions, &alive, RANGE_FT);
        let mut field = AcousticField::new();
        for src in &s.sources {
            field.add_source(src.clone()).expect("valid source");
        }
        let idx = AudibleIndex::build(&positions, &s.sources);
        let mut out = Vec::new();
        // Equal receiver sets first: the speedup below compares two
        // implementations of the same function, not two functions.
        for &p in &positions {
            grid.query_sorted(p, RANGE_FT, &mut out);
            let fast = out.clone();
            brute_receivers(&positions, p, RANGE_FT, &mut out);
            assert_eq!(fast, out, "grid and brute receiver sets diverge");
        }
        // The two synthesis paths must produce identical bytes before
        // their speeds are worth comparing.
        let noise = canned_noise();
        let work = synth_work(&idx, &positions, &times);
        let mut cand = Vec::new();
        let mut scratch = MixScratch::new();
        let mut batched = Vec::new();
        let mut reference = Vec::new();
        for &(ni, p, t0) in &work {
            idx.block_sources(ni, t0, t0 + audio::chunk_duration(), &mut cand);
            field.synthesize_batch(
                &cand,
                p,
                t0.as_secs_f64(),
                &noise,
                &mut scratch,
                &mut batched,
            );
            let t0_s = t0.as_secs_f64();
            reference.clear();
            reference.extend(noise.iter().enumerate().map(|(i, &nz)| {
                let t_s = t0_s + i as f64 / audio::SAMPLE_RATE_HZ as f64;
                field.sample_from(&cand, p, t_s, nz)
            }));
            assert_eq!(batched, reference, "synthesis paths diverge");
        }
        let samples_per_round = (work.len() * BLOCK_SAMPLES).max(1) as f64;
        let synth_batched_ns = time_ns(|| {
            synth_round_batched(
                &field,
                &idx,
                &work,
                &noise,
                &mut cand,
                &mut scratch,
                &mut batched,
            )
        });
        let synth_per_sample_ns = time_ns(|| {
            synth_round_per_sample(&field, &idx, &work, &noise, &mut cand, &mut batched)
        });
        let delivery_grid_ns = time_ns(|| grid_round(&grid, &positions, &mut out));
        let delivery_brute_ns = time_ns(|| brute_round(&positions, &mut out));
        let sampling_indexed_ns =
            time_ns(|| indexed_sampling_round(&idx, &field, &positions, &times));
        let sampling_full_ns = time_ns(|| full_sampling_round(&field, &positions, &times));
        let case = WorldCase {
            nodes: positions.len(),
            delivery_grid_ns,
            delivery_brute_ns,
            delivery_speedup: delivery_brute_ns / delivery_grid_ns.max(1e-9),
            sampling_indexed_ns,
            sampling_full_ns,
            sampling_speedup: sampling_full_ns / sampling_indexed_ns.max(1e-9),
            synth_batched_ns_per_sample: synth_batched_ns / samples_per_round,
            synth_per_sample_ns_per_sample: synth_per_sample_ns / samples_per_round,
            synth_speedup: synth_per_sample_ns / synth_batched_ns.max(1e-9),
        };
        println!(
            "world baseline {} nodes: delivery {:.0}ns grid vs {:.0}ns brute ({:.2}x), \
             sampling {:.0}ns indexed vs {:.0}ns full ({:.2}x), \
             synthesis {:.2}ns/sample batched vs {:.2}ns/sample per-sample ({:.2}x)",
            case.nodes,
            case.delivery_grid_ns,
            case.delivery_brute_ns,
            case.delivery_speedup,
            case.sampling_indexed_ns,
            case.sampling_full_ns,
            case.sampling_speedup,
            case.synth_batched_ns_per_sample,
            case.synth_per_sample_ns_per_sample,
            case.synth_speedup,
        );
        cases.push(case);
    }
    let mut scale = Vec::new();
    for nodes in SCALE_SIZES {
        let case = scale_case(nodes);
        println!(
            "scale baseline {} nodes: {} events over {:.0}s sim, {:.0} ns/event",
            case.nodes, case.events, case.sim_secs, case.ns_per_event,
        );
        scale.push(case);
    }
    let baseline = WorldBaseline {
        bench: "world_hot_loops_25_100_400".into(),
        radio_range_ft: RANGE_FT,
        cases,
        scale,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_world.json");
    let json = serde::Serialize::to_value(&baseline).to_json_pretty();
    std::fs::write(path, json).expect("write BENCH_world.json");
    println!("wrote BENCH_world.json");
}

fn main() {
    if std::env::var_os("WORLD_BENCH_QUICK").is_none() {
        benches();
    }
    emit_baseline();
}
