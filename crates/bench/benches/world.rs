//! Criterion bench for the simulation-core hot loops the spatial index
//! replaced, doubling as the generator of the machine-readable perf
//! baseline `BENCH_world.json`.
//!
//! Two measurements per grid size (25 / 100 / 400 nodes):
//!
//! * **delivery** — resolving the in-range receiver set for a broadcast
//!   from every node in turn, via [`NodeGrid::query_sorted`] versus the
//!   brute-force O(nodes) scan the delivery loop used before;
//! * **sampling** — the per-node peak acoustic level via the precomputed
//!   [`AudibleIndex`] versus the full [`AcousticField`] source scan.
//!
//! `emit_baseline` re-times both paths with plain `Instant` loops and
//! writes per-size means and speedups to `BENCH_world.json` in the
//! workspace root, together with whole-event-loop ns/event rows for the
//! city-block workload at 1k/4k/10k nodes (the timer-wheel scale ladder).
//! Set `WORLD_BENCH_QUICK=1` to skip the Criterion groups and only emit
//! the baseline (the CI mode).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use enviromic::sweep::ScenarioSpec;
use enviromic_sim::acoustics::AcousticField;
use enviromic_sim::spatial::{AudibleIndex, NodeGrid};
use enviromic_sim::World;
use enviromic_types::{Position, SimDuration, SimTime};
use enviromic_workloads::{large_grid_scenario, LargeGridParams, Scenario};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Radio range of the indoor world config — the delivery radius the
/// in-tree scenarios actually run with.
const RANGE_FT: f64 = 3.2;

/// Grid sizes under test: (cols, rows) giving 25, 100, and 400 nodes.
const SIZES: [(usize, usize); 3] = [(5, 5), (10, 10), (20, 20)];

/// The large-grid workload scaled down to `cols`×`rows`, keeping its
/// source schedule (8 static + 1 mobile).
fn scenario(cols: usize, rows: usize) -> Scenario {
    let params = LargeGridParams {
        cols,
        rows,
        ..LargeGridParams::default()
    };
    large_grid_scenario(&params, 42)
}

/// The receiver resolution the pre-index delivery loop performed: scan
/// every node, keep those in range (already in ascending index order).
fn brute_receivers(positions: &[Position], center: Position, range_ft: f64, out: &mut Vec<u32>) {
    out.clear();
    for (i, p) in positions.iter().enumerate() {
        if p.distance_to(center) <= range_ft {
            out.push(i as u32);
        }
    }
}

/// One full broadcast round via the grid: resolve receivers from every
/// node in turn. Returns the total receiver count as the live output.
fn grid_round(grid: &NodeGrid, positions: &[Position], out: &mut Vec<u32>) -> usize {
    let mut total = 0;
    for &p in positions {
        grid.query_sorted(p, RANGE_FT, out);
        total += out.len();
    }
    total
}

/// One full broadcast round via the brute-force scan.
fn brute_round(positions: &[Position], out: &mut Vec<u32>) -> usize {
    let mut total = 0;
    for &p in positions {
        brute_receivers(positions, p, RANGE_FT, out);
        total += out.len();
    }
    total
}

/// Sampling instants spread across the first minute of the scenario.
fn sample_times() -> Vec<SimTime> {
    (0..16)
        .map(|i| SimTime::ZERO + SimDuration::from_millis(i * 3750))
        .collect()
}

/// One sampling round via the audible index: peak level at every node at
/// every instant.
fn indexed_sampling_round(
    idx: &AudibleIndex,
    field: &AcousticField,
    positions: &[Position],
    times: &[SimTime],
) -> f64 {
    let mut acc = 0.0;
    for (ni, &p) in positions.iter().enumerate() {
        for &t in times {
            acc += idx.peak_level(field, ni, p, t);
        }
    }
    acc
}

/// One sampling round via the full-field source scan.
fn full_sampling_round(field: &AcousticField, positions: &[Position], times: &[SimTime]) -> f64 {
    let mut acc = 0.0;
    for &p in positions {
        for &t in times {
            acc += field.peak_level(p, t);
        }
    }
    acc
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery_round");
    for (cols, rows) in SIZES {
        let s = scenario(cols, rows);
        let positions = s.topology.positions().to_vec();
        let alive = vec![true; positions.len()];
        let grid = NodeGrid::build(&positions, &alive, RANGE_FT);
        let mut out = Vec::new();
        let n = positions.len();
        group.bench_function(BenchmarkId::new("grid", n), |b| {
            b.iter(|| black_box(grid_round(&grid, &positions, &mut out)));
        });
        group.bench_function(BenchmarkId::new("brute", n), |b| {
            b.iter(|| black_box(brute_round(&positions, &mut out)));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_round");
    let times = sample_times();
    for (cols, rows) in SIZES {
        let s = scenario(cols, rows);
        let positions = s.topology.positions().to_vec();
        let mut field = AcousticField::new();
        for src in &s.sources {
            field.add_source(src.clone()).expect("valid source");
        }
        let idx = AudibleIndex::build(&positions, &s.sources);
        let n = positions.len();
        group.bench_function(BenchmarkId::new("indexed", n), |b| {
            b.iter(|| black_box(indexed_sampling_round(&idx, &field, &positions, &times)));
        });
        group.bench_function(BenchmarkId::new("full_scan", n), |b| {
            b.iter(|| black_box(full_sampling_round(&field, &positions, &times)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delivery, bench_sampling);

/// Times `f` with a warmup-then-measure loop and returns the best mean
/// ns/round over several repetitions (minimum-of-means damps scheduler
/// noise, which matters at the 25-node scale where a round is ~1 µs).
fn time_ns<F: FnMut() -> T, T>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        // Size the batch so one repetition takes ~20ms.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.02 / once) as usize).clamp(1, 1_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

/// One measured size in the baseline JSON.
#[derive(Debug, Serialize, Deserialize)]
struct WorldCase {
    nodes: usize,
    delivery_grid_ns: f64,
    delivery_brute_ns: f64,
    delivery_speedup: f64,
    sampling_indexed_ns: f64,
    sampling_full_ns: f64,
    sampling_speedup: f64,
}

/// One whole-event-loop throughput row: the city workload run end to end
/// through the timer-wheel core at a given node count.
#[derive(Debug, Serialize, Deserialize)]
struct ScaleCase {
    nodes: usize,
    sim_secs: f64,
    events: u64,
    ns_per_event: f64,
}

/// The serialized baseline for `BENCH_world.json`.
#[derive(Debug, Serialize, Deserialize)]
struct WorldBaseline {
    bench: String,
    radio_range_ft: f64,
    cases: Vec<WorldCase>,
    /// Event-loop throughput on the city scale ladder (1k/4k/10k nodes).
    scale: Vec<ScaleCase>,
}

/// Node counts of the city event-loop ladder.
const SCALE_SIZES: [usize; 3] = [1_000, 4_000, 10_000];

/// Sim-time horizon of each city throughput run, seconds.
const SCALE_SIM_SECS: f64 = 10.0;

/// Runs the city workload end to end at `nodes` and returns its
/// throughput row. The setup (world build, spatial indexes) is excluded:
/// the row measures the event loop itself — queue scheduling, timer-wheel
/// cascades, delivery, and protocol dispatch.
fn scale_case(nodes: usize) -> ScaleCase {
    let input = ScenarioSpec::city(nodes, SCALE_SIM_SECS).build(42);
    let mut world = World::new(input.world_cfg);
    for &pos in input.scenario.topology.positions() {
        world.add_node(
            pos,
            Box::new(enviromic::core::EnviroMicNode::new(input.node_cfg.clone())),
        );
    }
    for src in &input.scenario.sources {
        world.add_source(src.clone()).expect("valid source");
    }
    // Dispatch one event so startup (index builds, on_start fan-out) is
    // settled before the clock starts.
    world.run_for_secs(0.0);
    let warmup = world.events_dispatched();
    let t0 = Instant::now();
    world.run_for_secs(SCALE_SIM_SECS);
    let wall = t0.elapsed().as_secs_f64();
    let events = world.events_dispatched() - warmup;
    ScaleCase {
        nodes,
        sim_secs: SCALE_SIM_SECS,
        events,
        ns_per_event: wall * 1e9 / events.max(1) as f64,
    }
}

/// Measures every size with plain `Instant` loops and writes the combined
/// baseline JSON to the workspace root.
fn emit_baseline() {
    let times = sample_times();
    let mut cases = Vec::new();
    for (cols, rows) in SIZES {
        let s = scenario(cols, rows);
        let positions = s.topology.positions().to_vec();
        let alive = vec![true; positions.len()];
        let grid = NodeGrid::build(&positions, &alive, RANGE_FT);
        let mut field = AcousticField::new();
        for src in &s.sources {
            field.add_source(src.clone()).expect("valid source");
        }
        let idx = AudibleIndex::build(&positions, &s.sources);
        let mut out = Vec::new();
        // Equal receiver sets first: the speedup below compares two
        // implementations of the same function, not two functions.
        for &p in &positions {
            grid.query_sorted(p, RANGE_FT, &mut out);
            let fast = out.clone();
            brute_receivers(&positions, p, RANGE_FT, &mut out);
            assert_eq!(fast, out, "grid and brute receiver sets diverge");
        }
        let delivery_grid_ns = time_ns(|| grid_round(&grid, &positions, &mut out));
        let delivery_brute_ns = time_ns(|| brute_round(&positions, &mut out));
        let sampling_indexed_ns =
            time_ns(|| indexed_sampling_round(&idx, &field, &positions, &times));
        let sampling_full_ns = time_ns(|| full_sampling_round(&field, &positions, &times));
        let case = WorldCase {
            nodes: positions.len(),
            delivery_grid_ns,
            delivery_brute_ns,
            delivery_speedup: delivery_brute_ns / delivery_grid_ns.max(1e-9),
            sampling_indexed_ns,
            sampling_full_ns,
            sampling_speedup: sampling_full_ns / sampling_indexed_ns.max(1e-9),
        };
        println!(
            "world baseline {} nodes: delivery {:.0}ns grid vs {:.0}ns brute ({:.2}x), \
             sampling {:.0}ns indexed vs {:.0}ns full ({:.2}x)",
            case.nodes,
            case.delivery_grid_ns,
            case.delivery_brute_ns,
            case.delivery_speedup,
            case.sampling_indexed_ns,
            case.sampling_full_ns,
            case.sampling_speedup,
        );
        cases.push(case);
    }
    let mut scale = Vec::new();
    for nodes in SCALE_SIZES {
        let case = scale_case(nodes);
        println!(
            "scale baseline {} nodes: {} events over {:.0}s sim, {:.0} ns/event",
            case.nodes, case.events, case.sim_secs, case.ns_per_event,
        );
        scale.push(case);
    }
    let baseline = WorldBaseline {
        bench: "world_hot_loops_25_100_400".into(),
        radio_range_ft: RANGE_FT,
        cases,
        scale,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_world.json");
    let json = serde::Serialize::to_value(&baseline).to_json_pretty();
    std::fs::write(path, json).expect("write BENCH_world.json");
    println!("wrote BENCH_world.json");
}

fn main() {
    if std::env::var_os("WORLD_BENCH_QUICK").is_none() {
        benches();
    }
    emit_baseline();
}
