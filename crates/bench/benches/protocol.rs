//! Criterion benches for end-to-end protocol simulation: how much wall
//! time one simulated second costs under each mode, and how fast leader
//! election converges.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use enviromic::core::{Mode, NodeConfig};
use enviromic::harness::{build_world, indoor_world_config};
use enviromic::sim::TraceEvent;
use enviromic::types::SimDuration;
use enviromic::workloads::{indoor_scenario, mobile_scenario, IndoorParams, MobileParams};

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_60s_indoor");
    group.sample_size(10);
    for (label, mode) in [
        ("baseline", Mode::Uncoordinated),
        ("coop_only", Mode::CooperativeOnly),
        ("full", Mode::Full),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            let params = IndoorParams {
                duration_secs: 60.0,
                ..IndoorParams::default()
            };
            b.iter(|| {
                let scenario = indoor_scenario(&params, 7);
                let cfg = NodeConfig::default().with_mode(mode).with_flash_chunks(650);
                let mut world = build_world(&scenario, &cfg, indoor_world_config(7));
                world.run_until(scenario.end());
                black_box(world.trace().len())
            });
        });
    }
    group.finish();
}

fn bench_election(c: &mut Criterion) {
    c.bench_function("leader_election_convergence", |b| {
        b.iter(|| {
            let scenario = mobile_scenario(&MobileParams::default());
            let cfg = NodeConfig::default().with_mode(Mode::CooperativeOnly);
            let mut world = build_world(&scenario, &cfg, indoor_world_config(3));
            // Run until the first leader announcement is traced.
            let mut elected_at = None;
            for _ in 0..200 {
                world.run_for_secs(0.1);
                if let Some(t) = world.trace().iter().find_map(|e| match e {
                    TraceEvent::LeaderElected { t, .. } => Some(*t),
                    _ => None,
                }) {
                    elected_at = Some(t);
                    break;
                }
            }
            black_box(elected_at.expect("a leader must be elected"))
        });
    });
}

fn bench_mule_retrieval(c: &mut Criterion) {
    use enviromic::core::{DataMule, MuleConfig, RetrievalMode};
    use enviromic::types::Position;
    let mut group = c.benchmark_group("retrieval");
    group.sample_size(10);
    group.bench_function("one_hop_collect_all", |b| {
        b.iter(|| {
            let scenario = mobile_scenario(&MobileParams::default());
            let cfg = NodeConfig::default().with_mode(Mode::CooperativeOnly);
            let mut world = build_world(&scenario, &cfg, indoor_world_config(9));
            world.add_node(
                Position::new(7.0, 5.0),
                Box::new(DataMule::new(MuleConfig {
                    mode: RetrievalMode::OneHop,
                    start_after: SimDuration::from_secs_f64(16.0),
                    rounds: 2,
                    round_timeout: SimDuration::from_secs_f64(30.0),
                    ..MuleConfig::default()
                })),
            );
            world.run_for_secs(80.0);
            black_box(world.trace().len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_modes, bench_election, bench_mule_retrieval);
criterion_main!(benches);
