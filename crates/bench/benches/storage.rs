//! Criterion benches for the flash chunk store: steady-state FIFO churn
//! (the recording hot path) and crash recovery scans.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use enviromic::flash::{Chunk, ChunkMeta, ChunkStore};
use enviromic::types::{EventId, NodeId, SimTime};

fn chunk(tag: u32) -> Chunk {
    Chunk::new(
        ChunkMeta {
            origin: NodeId(tag),
            event: Some(EventId::new(NodeId(1), tag)),
            t_start: SimTime::from_jiffies(u64::from(tag) * 2785),
        },
        vec![(tag % 251) as u8; 232],
    )
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_store");
    group.throughput(Throughput::Bytes(232));

    group.bench_function("push_pop_cycle", |b| {
        let mut store = ChunkStore::new(2048, 64);
        let mut n = 0u32;
        b.iter(|| {
            if store.is_full() {
                let _ = store.pop_front();
            }
            store.push_back(black_box(chunk(n))).unwrap();
            n = n.wrapping_add(1);
        });
    });

    group.bench_function("iterate_full_store", |b| {
        let mut store = ChunkStore::new(512, 64);
        for n in 0..512 {
            store.push_back(chunk(n)).unwrap();
        }
        b.iter(|| {
            let total: usize = store.iter().map(|c| c.payload.len()).sum();
            black_box(total)
        });
    });

    group.bench_function("crash_recovery_scan_2048", |b| {
        let mut store = ChunkStore::new(2048, 64);
        for n in 0..2048 {
            store.push_back(chunk(n)).unwrap();
        }
        let (flash, eeprom) = store.into_parts();
        b.iter(|| {
            let recovered = ChunkStore::recover(black_box(flash.clone()), eeprom.clone(), 64);
            black_box(recovered.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
