//! Criterion benches for the packet wire codec — the hot path of every
//! simulated transmission.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use enviromic::flash::{Chunk, ChunkMeta};
use enviromic::net::{decode_envelope, encode_envelope, Message};
use enviromic::types::{EventId, NodeId, SimDuration, SimTime};

fn control_messages() -> Vec<Message> {
    vec![
        Message::Sensing {
            event: Some(EventId::new(NodeId(3), 77)),
            level: 140,
            has_prelude: false,
            ttl_secs: 3600,
        },
        Message::TaskRequest {
            event: EventId::new(NodeId(3), 77),
            recorder: NodeId(12),
            task_seq: 41,
            duration: SimDuration::from_secs_f64(1.0),
            leader_time: SimTime::from_jiffies(123_456_789),
            keep_prelude: None,
        },
        Message::StateUpdate {
            ttl_secs: 512,
            free_chunks: 1024,
            avg_free_pct: 87,
        },
    ]
}

fn bulk_message() -> Message {
    Message::BulkData {
        to: NodeId(9),
        session: 1,
        seq: 7,
        last: false,
        chunk: Chunk::new(
            ChunkMeta {
                origin: NodeId(4),
                event: Some(EventId::new(NodeId(3), 77)),
                t_start: SimTime::from_jiffies(42),
            },
            vec![0xA5; 232],
        ),
    }
}

fn bench_codec(c: &mut Criterion) {
    let control = control_messages();
    let control_bytes = encode_envelope(&control);
    let bulk = vec![bulk_message()];
    let bulk_bytes = encode_envelope(&bulk);

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(control_bytes.len() as u64));
    group.bench_function("encode_control_envelope", |b| {
        b.iter(|| encode_envelope(black_box(&control)))
    });
    group.bench_function("decode_control_envelope", |b| {
        b.iter(|| decode_envelope(black_box(&control_bytes)).unwrap())
    });
    group.throughput(Throughput::Bytes(bulk_bytes.len() as u64));
    group.bench_function("encode_bulk_chunk", |b| {
        b.iter(|| encode_envelope(black_box(&bulk)))
    });
    group.bench_function("decode_bulk_chunk", |b| {
        b.iter(|| decode_envelope(black_box(&bulk_bytes)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
