//! Plain-text rendering of series and spatial contours for the
//! figure-reproduction harness.

/// Renders a multi-column time series as an aligned text table.
///
/// `columns` are the value-column names; each row is `(x, values)` with
/// `values.len() == columns.len()`.
///
/// # Panics
///
/// Panics when a row's value count does not match the column count.
#[must_use]
pub fn render_series(x_name: &str, columns: &[&str], rows: &[(f64, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{x_name:>10}"));
    for c in columns {
        out.push_str(&format!(" {c:>18}"));
    }
    out.push('\n');
    for (x, values) in rows {
        assert_eq!(values.len(), columns.len(), "row width mismatch");
        out.push_str(&format!("{x:>10.1}"));
        for v in values {
            out.push_str(&format!(" {v:>18.4}"));
        }
        out.push('\n');
    }
    out
}

/// A spatial grid of values for contour-style figures.
#[derive(Debug, Clone, PartialEq)]
pub struct ContourGrid {
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Row-major cell values.
    pub values: Vec<f64>,
}

impl ContourGrid {
    /// Builds a grid by summing per-node values into cells.
    ///
    /// # Panics
    ///
    /// Panics when `cells` and `values` differ in length or a cell is out
    /// of range.
    #[must_use]
    pub fn from_node_values(
        cols: usize,
        rows: usize,
        cells: &[(usize, usize)],
        values: &[f64],
    ) -> Self {
        assert_eq!(cells.len(), values.len(), "cells/values length mismatch");
        let mut grid = vec![0.0; cols * rows];
        for (&(c, r), &v) in cells.iter().zip(values) {
            assert!(c < cols && r < rows, "cell ({c},{r}) out of {cols}x{rows}");
            grid[r * cols + c] += v;
        }
        ContourGrid {
            cols,
            rows,
            values: grid,
        }
    }

    /// The maximum cell value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Renders the grid: a digit map (0–9 relative to the maximum, row 0
    /// at the bottom like the paper's plots) followed by raw values.
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("{title} (max = {:.0})\n", self.max());
        let max = self.max().max(1e-12);
        for r in (0..self.rows).rev() {
            out.push_str("  ");
            for c in 0..self.cols {
                let v = self.values[r * self.cols + c];
                let digit = ((v / max) * 9.0).round() as u32;
                out.push_str(&format!("{digit} "));
            }
            out.push('\n');
        }
        out.push_str("  raw values (row-major, row 0 first):\n");
        for r in 0..self.rows {
            out.push_str("   ");
            for c in 0..self.cols {
                out.push_str(&format!(" {:>10.0}", self.values[r * self.cols + c]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_renders_aligned_rows() {
        let rows = vec![(0.0, vec![1.0, 2.0]), (10.0, vec![3.5, 4.25])];
        let s = render_series("t", &["a", "b"], &rows);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains('b'));
        assert!(lines[2].contains("3.5000"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn series_rejects_ragged_rows() {
        let _ = render_series("t", &["a"], &[(0.0, vec![1.0, 2.0])]);
    }

    #[test]
    fn contour_sums_cells_and_scales_digits() {
        let cells = [(0, 0), (0, 0), (1, 1)];
        let values = [2.0, 3.0, 10.0];
        let g = ContourGrid::from_node_values(2, 2, &cells, &values);
        assert_eq!(g.values, vec![5.0, 0.0, 0.0, 10.0]);
        assert_eq!(g.max(), 10.0);
        let s = g.render("demo");
        assert!(s.contains("demo"));
        // Cell (0,0)=5 → digit 5 of 9; cell (1,1)=10 → digit 9.
        assert!(s.contains('9'));
    }

    #[test]
    fn empty_grid_renders_zeroes() {
        let g = ContourGrid::from_node_values(2, 1, &[], &[]);
        assert_eq!(g.max(), 0.0);
        assert!(g.render("empty").contains("0 0"));
    }
}
