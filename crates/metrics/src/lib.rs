//! Metrics: everything needed to regenerate the EnviroMic evaluation
//! figures from a simulation trace.
//!
//! * [`Experiment`] — trace + ground truth: miss-ratio series (Figs. 6,
//!   10), stored-data redundancy (Fig. 11), message censuses (Figs. 12,
//!   14), occupancy and holdings maps (Figs. 13, 17, 18), per-minute
//!   activity (Fig. 16);
//! * [`IntervalSet`] — the union-of-intervals machinery behind coverage;
//! * [`amplitude_envelope`] / [`best_xcorr`] — waveform similarity for the
//!   Fig. 8 voice experiment;
//! * [`mean_ci90`] — the paper's "average and 90% confidence interval"
//!   over repeated runs;
//! * [`ContourGrid`] / [`render_series`] — plain-text figure rendering;
//! * [`export`] — CSV trace export for offline analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod export;
mod intervals;
mod render;
mod stats;
mod waveform;

pub use analysis::{Experiment, SeriesPoint};
pub use intervals::IntervalSet;
pub use render::{render_series, ContourGrid};
pub use stats::{mean, mean_ci90, std_dev};
pub use waveform::{amplitude_envelope, best_xcorr, normalized_xcorr_at};
