//! Waveform comparison for the Fig. 8 voice-stitching experiment.
//!
//! The paper argues visual similarity between the single-mote reference
//! recording and the EnviroMic recording stitched from many motes'
//! chunks. We quantify the same comparison: amplitude envelopes for the
//! "visual" shape, and normalized cross-correlation for a scalar score.

/// Amplitude envelope: mean absolute deviation from the 128 midpoint per
/// window of `win` samples. Empty input yields an empty envelope.
#[must_use]
pub fn amplitude_envelope(samples: &[u8], win: usize) -> Vec<f64> {
    if win == 0 {
        return Vec::new();
    }
    samples
        .chunks(win)
        .map(|c| c.iter().map(|&s| (f64::from(s) - 128.0).abs()).sum::<f64>() / c.len() as f64)
        .collect()
}

/// Normalized cross-correlation of two real-valued sequences at the given
/// lag of `b` relative to `a`. Returns 0 for degenerate inputs.
#[must_use]
pub fn normalized_xcorr_at(a: &[f64], b: &[f64], lag: isize) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for (i, &x) in a.iter().enumerate().take(n) {
        let j = i as isize + lag;
        if j < 0 || j as usize >= b.len() {
            continue;
        }
        xs.push(x);
        ys.push(b[j as usize]);
    }
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / xs.len() as f64;
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx <= 0.0 || dy <= 0.0 {
        return 0.0;
    }
    num / (dx * dy).sqrt()
}

/// Best normalized cross-correlation of `b` against `a` over lags in
/// `[-max_lag, max_lag]`. Returns `(best_score, best_lag)`.
#[must_use]
pub fn best_xcorr(a: &[f64], b: &[f64], max_lag: usize) -> (f64, isize) {
    let mut best = (f64::MIN, 0isize);
    let mut lag = -(max_lag as isize);
    while lag <= max_lag as isize {
        let score = normalized_xcorr_at(a, b, lag);
        if score > best.0 {
            best = (score, lag);
        }
        lag += 1;
    }
    if best.0 == f64::MIN {
        (0.0, 0)
    } else {
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, period: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (core::f64::consts::TAU * i as f64 / period as f64).sin())
            .collect()
    }

    #[test]
    fn identical_signals_correlate_perfectly() {
        let a = tone(500, 25, 1.0);
        let (score, lag) = best_xcorr(&a, &a, 10);
        assert!((score - 1.0).abs() < 1e-9);
        assert_eq!(lag, 0);
    }

    #[test]
    fn shifted_signal_found_at_its_lag() {
        let a = tone(500, 50, 1.0);
        let mut b = vec![0.0; 7];
        b.extend_from_slice(&a);
        let (score, lag) = best_xcorr(&a, &b, 20);
        assert!(score > 0.99, "score {score}");
        assert_eq!(lag, 7);
    }

    #[test]
    fn uncorrelated_noise_scores_low() {
        // Deterministic pseudo-noise via hashing.
        let a: Vec<f64> = (0..800u64)
            .map(|i| (enviromic_sim::rng::split_mix64(i) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let b: Vec<f64> = (0..800u64)
            .map(|i| (enviromic_sim::rng::split_mix64(i + 99_999) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let (score, _) = best_xcorr(&a, &b, 5);
        assert!(score < 0.3, "score {score}");
    }

    #[test]
    fn envelope_tracks_amplitude() {
        let mut samples = vec![128u8; 100];
        samples.extend((0..100).map(|i| if i % 2 == 0 { 28 } else { 228 }));
        let env = amplitude_envelope(&samples, 50);
        assert_eq!(env.len(), 4);
        assert!(env[0] < 1.0 && env[1] < 1.0);
        assert!(env[2] > 90.0 && env[3] > 90.0);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(amplitude_envelope(&[], 10), Vec::<f64>::new());
        assert_eq!(amplitude_envelope(&[1, 2], 0), Vec::<f64>::new());
        assert_eq!(normalized_xcorr_at(&[], &[], 0), 0.0);
        assert_eq!(best_xcorr(&[1.0], &[1.0], 3).0, 0.0); // too short
    }
}
