//! Summary statistics for repeated experiment runs.

/// Mean of a sample (0 for an empty sample).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for fewer than two points).
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Mean with the 90% confidence-interval half-width (normal
/// approximation, z = 1.645 — the paper reports "average and 90%
/// confidence interval" over 15 runs).
#[must_use]
pub fn mean_ci90(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let half = 1.645 * std_dev(xs) / (xs.len() as f64).sqrt();
    (m, half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample (n-1) standard deviation of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = [1.0, 2.0, 3.0];
        let big: Vec<f64> = (0..48).map(|i| 1.0 + (i % 3) as f64).collect();
        let (_, ci_small) = mean_ci90(&small);
        let (_, ci_big) = mean_ci90(&big);
        assert!(ci_big < ci_small);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(mean_ci90(&[3.0]), (3.0, 0.0));
    }
}
