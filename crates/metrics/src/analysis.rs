//! Trace analysis: the miss-ratio, redundancy, overhead, and spatial
//! aggregates behind every evaluation figure.
//!
//! Everything is computed from the simulation [`Trace`] plus the
//! scenario's ground truth (source specs and node positions) — never from
//! protocol internals, mirroring how the paper post-processed collected
//! flash images.

use crate::intervals::IntervalSet;
use enviromic_sim::acoustics::{SourceId, SourceSpec};
use enviromic_sim::{RecordKind, Trace, TraceEvent};
use enviromic_types::{NodeId, Position, SimTime, JIFFIES_PER_SEC};
use std::collections::HashMap;

/// A trace paired with its ground truth.
#[derive(Debug, Clone, Copy)]
pub struct Experiment<'a> {
    /// The simulation trace.
    pub trace: &'a Trace,
    /// Ground-truth acoustic sources.
    pub sources: &'a [SourceSpec],
    /// Node positions in node-ID order.
    pub positions: &'a [Position],
}

/// One point of a time series: `(seconds, value)`.
pub type SeriesPoint = (f64, f64);

impl<'a> Experiment<'a> {
    /// Creates an experiment view.
    #[must_use]
    pub fn new(trace: &'a Trace, sources: &'a [SourceSpec], positions: &'a [Position]) -> Self {
        Experiment {
            trace,
            sources,
            positions,
        }
    }

    /// Attributes a recorded interval at `node` to the ground-truth source
    /// with the largest overlap among those audible near the node during
    /// the overlap, if any.
    ///
    /// Audibility is sampled at several instants with a 2× range slack: a
    /// recorder assigned while a mobile source was in range legitimately
    /// keeps recording for a task period as the source walks away, and
    /// that recording still belongs to the event.
    #[must_use]
    pub fn attribute(&self, node: NodeId, t0: SimTime, t1: SimTime) -> Option<SourceId> {
        let pos = *self.positions.get(node.index())?;
        let mut best: Option<(SourceId, u64)> = None;
        for s in self.sources {
            let a = t0.as_jiffies().max(s.start.as_jiffies());
            let b = t1.as_jiffies().min(s.stop.as_jiffies());
            if b <= a {
                continue;
            }
            let audible = (0..=4).any(|k| {
                let t = SimTime::from_jiffies(a + (b - a) * k / 4);
                s.motion.position_at(t).distance_to(pos) < s.range_ft * 2.0
            });
            if !audible {
                continue;
            }
            let overlap = b - a;
            if best.is_none_or(|(_, len)| overlap > len) {
                best = Some((s.id, overlap));
            }
        }
        best.map(|(id, _)| id)
    }

    /// Cumulative recording miss ratio sampled every `sample_secs`
    /// (Figs. 6 and 10): at each instant, one minus the fraction of
    /// so-far-elapsed event time covered by stored recordings.
    #[must_use]
    pub fn miss_ratio_series(&self, horizon_secs: f64, sample_secs: f64) -> Vec<SeriesPoint> {
        // Collect attributed recorded intervals (clipped to their source's
        // active window) sorted by start.
        let mut recs: Vec<(u64, u64, SourceId)> = Vec::new();
        for e in self.trace.iter() {
            if let TraceEvent::Recorded { node, t0, t1, .. } = e {
                if let Some(src) = self.attribute(*node, *t0, *t1) {
                    let spec = &self.sources[self
                        .sources
                        .iter()
                        .position(|s| s.id == src)
                        .expect("attributed source exists")];
                    let a = t0.as_jiffies().max(spec.start.as_jiffies());
                    let b = t1.as_jiffies().min(spec.stop.as_jiffies());
                    if b > a {
                        recs.push((a, b, src));
                    }
                }
            }
        }
        recs.sort_unstable();

        let mut out = Vec::new();
        let mut t = sample_secs;
        while t <= horizon_secs + 1e-9 {
            let t_j = (t * JIFFIES_PER_SEC as f64) as u64;
            // Elapsed event time.
            let mut active: u64 = 0;
            for s in self.sources {
                let a = s.start.as_jiffies();
                let b = s.stop.as_jiffies().min(t_j);
                if b > a {
                    active += b - a;
                }
            }
            // Covered (unique per source).
            let mut per_source: HashMap<SourceId, IntervalSet> = HashMap::new();
            for &(a, b, src) in &recs {
                if a >= t_j {
                    continue;
                }
                per_source.entry(src).or_default().add(a, b.min(t_j));
            }
            let covered: u64 = per_source.values().map(IntervalSet::total_len).sum();
            let miss = if active == 0 {
                0.0
            } else {
                1.0 - covered as f64 / active as f64
            };
            out.push((t, miss.clamp(0.0, 1.0)));
            t += sample_secs;
        }
        out
    }

    /// Whole-run miss ratio (the value at the end of the series).
    #[must_use]
    pub fn miss_ratio(&self, horizon_secs: f64) -> f64 {
        self.miss_ratio_series(horizon_secs, horizon_secs)
            .last()
            .map_or(0.0, |&(_, m)| m)
    }

    /// Stored-data redundancy ratio over time (Fig. 11): one minus the
    /// unique audio fraction of everything currently held in flash
    /// (duplicate simultaneous recordings *and* duplicated migrations
    /// count).
    #[must_use]
    pub fn redundancy_series(&self, horizon_secs: f64, sample_secs: f64) -> Vec<SeriesPoint> {
        #[derive(Clone)]
        struct KeyInfo {
            count: i64,
            a: u64,
            b: u64,
            source: Option<SourceId>,
        }
        let mut keys: HashMap<(u32, u64), KeyInfo> = HashMap::new();
        let mut events = self.trace.iter().peekable();
        let mut out = Vec::new();
        let mut t = sample_secs;
        while t <= horizon_secs + 1e-9 {
            let t_j = SimTime::from_jiffies((t * JIFFIES_PER_SEC as f64) as u64);
            while let Some(e) = events.peek() {
                if e.time() > t_j {
                    break;
                }
                match events.next().expect("peeked") {
                    TraceEvent::ChunkStored {
                        origin,
                        audio_t0,
                        audio_t1,
                        ..
                    } => {
                        let key = (origin.0, audio_t0.as_jiffies());
                        let entry = keys.entry(key).or_insert_with(|| KeyInfo {
                            count: 0,
                            a: audio_t0.as_jiffies(),
                            b: audio_t1.as_jiffies(),
                            source: self.attribute(*origin, *audio_t0, *audio_t1),
                        });
                        entry.count += 1;
                    }
                    TraceEvent::ChunkRemoved {
                        origin, audio_t0, ..
                    } => {
                        if let Some(entry) = keys.get_mut(&(origin.0, audio_t0.as_jiffies())) {
                            entry.count -= 1;
                        }
                    }
                    _ => {}
                }
            }
            let mut total: u64 = 0;
            let mut per_source: HashMap<Option<SourceId>, IntervalSet> = HashMap::new();
            for info in keys.values() {
                if info.count <= 0 || info.b <= info.a {
                    continue;
                }
                total += (info.b - info.a) * info.count as u64;
                per_source
                    .entry(info.source)
                    .or_default()
                    .add(info.a, info.b);
            }
            let unique: u64 = per_source.values().map(IntervalSet::total_len).sum();
            let ratio = if total == 0 {
                0.0
            } else {
                1.0 - unique as f64 / total as f64
            };
            out.push((t, ratio.clamp(0.0, 1.0)));
            t += sample_secs;
        }
        out
    }

    /// Cumulative count of messages of the given kinds over time
    /// (Fig. 12).
    #[must_use]
    pub fn message_series(
        &self,
        kinds: &[&str],
        horizon_secs: f64,
        sample_secs: f64,
    ) -> Vec<SeriesPoint> {
        let mut times: Vec<u64> = self
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MessageSent { kind, t, .. } if kinds.contains(kind) => {
                    Some(t.as_jiffies())
                }
                _ => None,
            })
            .collect();
        times.sort_unstable();
        let mut out = Vec::new();
        let mut t = sample_secs;
        while t <= horizon_secs + 1e-9 {
            let t_j = (t * JIFFIES_PER_SEC as f64) as u64;
            let count = times.partition_point(|&x| x <= t_j);
            out.push((t, count as f64));
            t += sample_secs;
        }
        out
    }

    /// Per-node counts of the given message kinds (Fig. 14).
    #[must_use]
    pub fn per_node_message_counts(&self, kinds: &[&str]) -> Vec<u64> {
        let mut counts = vec![0u64; self.positions.len()];
        for e in self.trace.iter() {
            if let TraceEvent::MessageSent { node, kind, .. } = e {
                if kinds.contains(kind) {
                    if let Some(c) = counts.get_mut(node.index()) {
                        *c += 1;
                    }
                }
            }
        }
        counts
    }

    /// Per-node bytes of audio *recorded by* that node (Fig. 17's "amount
    /// of acoustic data generated in different locations").
    #[must_use]
    pub fn per_node_recorded_bytes(&self) -> Vec<u64> {
        let mut bytes = vec![0u64; self.positions.len()];
        for e in self.trace.iter() {
            if let TraceEvent::Recorded { node, bytes: b, .. } = e {
                if let Some(slot) = bytes.get_mut(node.index()) {
                    *slot += b;
                }
            }
        }
        bytes
    }

    /// Per-node seconds of audio recorded within `[from, to)` seconds
    /// (Fig. 16's per-minute activity).
    #[must_use]
    pub fn recorded_secs_between(&self, from_secs: f64, to_secs: f64) -> f64 {
        let from = (from_secs * JIFFIES_PER_SEC as f64) as u64;
        let to = (to_secs * JIFFIES_PER_SEC as f64) as u64;
        let mut total = 0u64;
        for e in self.trace.iter() {
            if let TraceEvent::Recorded { t0, t1, .. } = e {
                let a = t0.as_jiffies().max(from);
                let b = t1.as_jiffies().min(to);
                total += b.saturating_sub(a);
            }
        }
        total as f64 / JIFFIES_PER_SEC as f64
    }

    /// Per-node used chunk slots at the occupancy poll nearest (at or
    /// before) `t_secs` (Fig. 13).
    #[must_use]
    pub fn occupancy_at(&self, t_secs: f64) -> Vec<u64> {
        let t_j = SimTime::from_jiffies((t_secs * JIFFIES_PER_SEC as f64) as u64);
        let mut used = vec![0u64; self.positions.len()];
        for e in self.trace.iter() {
            if let TraceEvent::Occupancy {
                node, used: u, t, ..
            } = e
            {
                if *t <= t_j {
                    if let Some(slot) = used.get_mut(node.index()) {
                        *slot = *u;
                    }
                }
            }
        }
        used
    }

    /// Final per-holder payload bytes of chunks originally recorded by
    /// `origin` (Fig. 18's migration map). The origin's own holdings are
    /// reported too (index `origin`).
    #[must_use]
    pub fn final_holdings_of_origin(&self, origin: NodeId) -> Vec<u64> {
        let mut holdings = vec![0i64; self.positions.len()];
        for e in self.trace.iter() {
            match e {
                TraceEvent::ChunkStored {
                    node,
                    origin: o,
                    bytes,
                    ..
                } if *o == origin => {
                    if let Some(slot) = holdings.get_mut(node.index()) {
                        *slot += i64::from(*bytes);
                    }
                }
                TraceEvent::ChunkRemoved {
                    node,
                    origin: o,
                    audio_t0,
                    audio_t1,
                    ..
                } if *o == origin => {
                    let bytes = (audio_t1.saturating_since(*audio_t0).as_secs_f64()
                        * f64::from(enviromic_types::audio::BYTES_PER_SEC))
                    .round() as i64;
                    if let Some(slot) = holdings.get_mut(node.index()) {
                        *slot -= bytes;
                    }
                }
                _ => {}
            }
        }
        holdings.into_iter().map(|v| v.max(0) as u64).collect()
    }

    /// The node that recorded the most audio (the Fig. 18 hotspot).
    #[must_use]
    pub fn hotspot_recorder(&self) -> Option<NodeId> {
        let bytes = self.per_node_recorded_bytes();
        bytes
            .iter()
            .enumerate()
            .max_by_key(|(_, &b)| b)
            .filter(|(_, &b)| b > 0)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// How many distinct event (file) IDs were used for each ground-truth
    /// source — the paper's file-continuity measure (§II-A.1: handoffs
    /// should keep one file per continuous event; "an acoustic event with
    /// a large spatial signature may be associated with multiple
    /// leaders and thus multiple files").
    #[must_use]
    pub fn files_per_source(&self) -> HashMap<SourceId, usize> {
        let mut files: HashMap<SourceId, std::collections::HashSet<u64>> = HashMap::new();
        for e in self.trace.iter() {
            if let TraceEvent::Recorded {
                node,
                event: Some(ev),
                t0,
                t1,
                ..
            } = e
            {
                if let Some(src) = self.attribute(*node, *t0, *t1) {
                    files.entry(src).or_default().insert(ev.to_raw());
                }
            }
        }
        files.into_iter().map(|(s, set)| (s, set.len())).collect()
    }

    /// Total seconds recorded under each [`RecordKind`].
    #[must_use]
    pub fn recorded_secs_by_kind(&self) -> HashMap<RecordKind, f64> {
        let mut map = HashMap::new();
        for e in self.trace.iter() {
            if let TraceEvent::Recorded { t0, t1, kind, .. } = e {
                *map.entry(*kind).or_insert(0.0) += t1.saturating_since(*t0).as_secs_f64();
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviromic_sim::acoustics::{Motion, Waveform};
    use enviromic_types::SimDuration;

    fn source(id: u32, pos: Position, start_s: f64, stop_s: f64) -> SourceSpec {
        SourceSpec {
            id: SourceId(id),
            start: SimTime::ZERO + SimDuration::from_secs_f64(start_s),
            stop: SimTime::ZERO + SimDuration::from_secs_f64(stop_s),
            amplitude: 100.0,
            range_ft: 5.0,
            motion: Motion::Static(pos),
            waveform: Waveform::Noise,
        }
    }

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    fn recorded(node: u32, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent::Recorded {
            node: NodeId(node),
            event: None,
            t0: t(t0),
            t1: t(t1),
            bytes: ((t1 - t0) * 2730.0) as u64,
            kind: RecordKind::Task,
        }
    }

    #[test]
    fn attribution_requires_audibility_and_overlap() {
        let sources = [source(1, Position::new(0.0, 0.0), 0.0, 10.0)];
        let positions = [Position::new(1.0, 0.0), Position::new(100.0, 0.0)];
        let trace = Trace::new();
        let exp = Experiment::new(&trace, &sources, &positions);
        assert_eq!(exp.attribute(NodeId(0), t(1.0), t(2.0)), Some(SourceId(1)));
        // Out of range.
        assert_eq!(exp.attribute(NodeId(1), t(1.0), t(2.0)), None);
        // No temporal overlap.
        assert_eq!(exp.attribute(NodeId(0), t(11.0), t(12.0)), None);
    }

    #[test]
    fn miss_ratio_full_coverage_is_zero() {
        let sources = [source(1, Position::new(0.0, 0.0), 0.0, 10.0)];
        let positions = [Position::new(1.0, 0.0)];
        let trace: Trace = vec![recorded(0, 0.0, 10.0)].into_iter().collect();
        let exp = Experiment::new(&trace, &sources, &positions);
        let miss = exp.miss_ratio(10.0);
        assert!(miss.abs() < 1e-6, "miss {miss}");
    }

    #[test]
    fn miss_ratio_half_coverage() {
        let sources = [source(1, Position::new(0.0, 0.0), 0.0, 10.0)];
        let positions = [Position::new(1.0, 0.0)];
        // Two nodes record the same first half: redundant, still 50% miss.
        let trace: Trace = vec![recorded(0, 0.0, 5.0), recorded(0, 0.0, 5.0)]
            .into_iter()
            .collect();
        let exp = Experiment::new(&trace, &sources, &positions);
        let miss = exp.miss_ratio(10.0);
        assert!((miss - 0.5).abs() < 1e-6, "miss {miss}");
    }

    #[test]
    fn miss_ratio_series_is_cumulative() {
        let sources = [
            source(1, Position::new(0.0, 0.0), 0.0, 10.0),
            source(2, Position::new(0.0, 0.0), 20.0, 30.0),
        ];
        let positions = [Position::new(1.0, 0.0)];
        // First event fully recorded, second missed entirely.
        let trace: Trace = vec![recorded(0, 0.0, 10.0)].into_iter().collect();
        let exp = Experiment::new(&trace, &sources, &positions);
        let series = exp.miss_ratio_series(30.0, 10.0);
        assert_eq!(series.len(), 3);
        assert!(series[0].1 < 1e-6, "covered so far");
        assert!((series[2].1 - 0.5).abs() < 1e-6, "half missed at the end");
    }

    fn stored(node: u32, origin: u32, a: f64, b: f64) -> TraceEvent {
        TraceEvent::ChunkStored {
            node: NodeId(node),
            origin: NodeId(origin),
            event: None,
            audio_t0: t(a),
            audio_t1: t(b),
            bytes: ((b - a) * 2730.0) as u32,
            t: t(b),
        }
    }

    #[test]
    fn redundancy_counts_duplicate_copies() {
        let sources = [source(1, Position::new(0.0, 0.0), 0.0, 10.0)];
        let positions = [Position::new(1.0, 0.0), Position::new(2.0, 0.0)];
        // The same audio second stored on two nodes by two recorders.
        let trace: Trace = vec![stored(0, 0, 0.0, 1.0), stored(1, 1, 0.0, 1.0)]
            .into_iter()
            .collect();
        let exp = Experiment::new(&trace, &sources, &positions);
        let series = exp.redundancy_series(2.0, 2.0);
        assert!((series[0].1 - 0.5).abs() < 1e-6, "got {:?}", series);
    }

    #[test]
    fn redundancy_zero_for_distinct_audio() {
        let sources = [source(1, Position::new(0.0, 0.0), 0.0, 10.0)];
        let positions = [Position::new(1.0, 0.0)];
        let trace: Trace = vec![stored(0, 0, 0.0, 1.0), stored(0, 0, 1.0, 2.0)]
            .into_iter()
            .collect();
        let exp = Experiment::new(&trace, &sources, &positions);
        let series = exp.redundancy_series(2.0, 2.0);
        assert!(series[0].1 < 1e-6, "got {:?}", series);
    }

    #[test]
    fn migration_dedup_via_removal() {
        let sources = [source(1, Position::new(0.0, 0.0), 0.0, 10.0)];
        let positions = [Position::new(1.0, 0.0), Position::new(2.0, 0.0)];
        // Chunk stored at node 0, copied to node 1, then removed from 0:
        // transiently duplicated, finally unique.
        let mut events = vec![stored(0, 0, 0.0, 1.0)];
        let mut copy = stored(1, 0, 0.0, 1.0);
        if let TraceEvent::ChunkStored { t, .. } = &mut copy {
            *t = self::t(5.0);
        }
        events.push(copy);
        events.push(TraceEvent::ChunkRemoved {
            node: NodeId(0),
            origin: NodeId(0),
            audio_t0: t(0.0),
            audio_t1: t(1.0),
            t: t(6.0),
        });
        let trace: Trace = events.into_iter().collect();
        let exp = Experiment::new(&trace, &sources, &positions);
        let series = exp.redundancy_series(10.0, 5.0);
        assert!((series[0].1 - 0.5).abs() < 1e-6, "duplicated at t=5");
        assert!(series[1].1 < 1e-6, "unique at t=10: {:?}", series);
    }

    #[test]
    fn message_series_counts_selected_kinds() {
        let trace: Trace = vec![
            TraceEvent::MessageSent {
                node: NodeId(0),
                kind: "TASK_REQUEST",
                bytes: 10,
                t: t(1.0),
            },
            TraceEvent::MessageSent {
                node: NodeId(0),
                kind: "SENSING",
                bytes: 10,
                t: t(2.0),
            },
            TraceEvent::MessageSent {
                node: NodeId(1),
                kind: "TASK_REQUEST",
                bytes: 10,
                t: t(3.0),
            },
        ]
        .into_iter()
        .collect();
        let positions = [Position::new(0.0, 0.0), Position::new(1.0, 0.0)];
        let exp = Experiment::new(&trace, &[], &positions);
        let series = exp.message_series(&["TASK_REQUEST"], 4.0, 2.0);
        assert_eq!(series, vec![(2.0, 1.0), (4.0, 2.0)]);
        assert_eq!(exp.per_node_message_counts(&["TASK_REQUEST"]), vec![1, 1]);
    }

    #[test]
    fn files_per_source_counts_distinct_event_ids() {
        use enviromic_types::EventId;
        let sources = [source(1, Position::new(0.0, 0.0), 0.0, 10.0)];
        let positions = [Position::new(1.0, 0.0)];
        let ev_a = EventId::new(NodeId(0), 1);
        let ev_b = EventId::new(NodeId(2), 1);
        let mk = |ev, a: f64, b: f64| TraceEvent::Recorded {
            node: NodeId(0),
            event: Some(ev),
            t0: t(a),
            t1: t(b),
            bytes: 100,
            kind: RecordKind::Task,
        };
        let trace: Trace = vec![mk(ev_a, 0.0, 2.0), mk(ev_a, 2.0, 4.0), mk(ev_b, 5.0, 7.0)]
            .into_iter()
            .collect();
        let exp = Experiment::new(&trace, &sources, &positions);
        let files = exp.files_per_source();
        assert_eq!(files.get(&SourceId(1)), Some(&2));
    }

    #[test]
    fn holdings_follow_chunk_moves() {
        let positions = [Position::new(0.0, 0.0), Position::new(1.0, 0.0)];
        let trace: Trace = vec![
            stored(0, 0, 0.0, 1.0),
            stored(1, 0, 0.0, 1.0),
            TraceEvent::ChunkRemoved {
                node: NodeId(0),
                origin: NodeId(0),
                audio_t0: t(0.0),
                audio_t1: t(1.0),
                t: t(2.0),
            },
        ]
        .into_iter()
        .collect();
        let exp = Experiment::new(&trace, &[], &positions);
        let holdings = exp.final_holdings_of_origin(NodeId(0));
        assert_eq!(holdings[0], 0);
        assert!(holdings[1] > 2000, "{holdings:?}");
    }
}
