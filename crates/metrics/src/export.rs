//! Trace export for offline analysis.
//!
//! Field scientists post-process recordings in whatever environment they
//! like; this module flattens a simulation [`Trace`] into CSV so R,
//! pandas, or a spreadsheet can pick it up without Rust bindings.

use enviromic_sim::{Trace, TraceEvent};
use std::io::{self, Write};

/// The CSV header written by [`write_csv`].
pub const CSV_HEADER: &str = "t_secs,kind,node,origin,event,t0_secs,t1_secs,bytes,extra";

fn esc(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Writes the trace as CSV rows, one per event.
///
/// Columns: event time, record kind, acting node, data origin (when the
/// record concerns stored audio), event/file ID, interval bounds, byte
/// counts, and a kind-specific `extra` field (message kind, drop reason,
/// migration peer…). Missing fields are empty.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_csv<W: Write>(trace: &Trace, mut out: W) -> io::Result<()> {
    writeln!(out, "{CSV_HEADER}")?;
    for e in trace.iter() {
        let t = e.time().as_secs_f64();
        let row = match e {
            TraceEvent::Recorded {
                node,
                event,
                t0,
                t1,
                bytes,
                kind,
            } => format!(
                "{t:.4},recorded,{},{},{},{:.4},{:.4},{},{:?}",
                node.0,
                node.0,
                event.map(|e| e.to_string()).unwrap_or_default(),
                t0.as_secs_f64(),
                t1.as_secs_f64(),
                bytes,
                kind
            ),
            TraceEvent::RecordDropped {
                node,
                t0,
                t1,
                reason,
            } => format!(
                "{t:.4},dropped,{},,,{:.4},{:.4},,{:?}",
                node.0,
                t0.as_secs_f64(),
                t1.as_secs_f64(),
                reason
            ),
            TraceEvent::Erased {
                node,
                t0,
                t1,
                bytes,
            } => format!(
                "{t:.4},erased,{},,,{:.4},{:.4},{},",
                node.0,
                t0.as_secs_f64(),
                t1.as_secs_f64(),
                bytes
            ),
            TraceEvent::MessageSent {
                node, kind, bytes, ..
            } => format!("{t:.4},message,{},,,,,{},{}", node.0, bytes, esc(kind)),
            TraceEvent::ChunkStored {
                node,
                origin,
                event,
                audio_t0,
                audio_t1,
                bytes,
                ..
            } => format!(
                "{t:.4},chunk_stored,{},{},{},{:.4},{:.4},{},",
                node.0,
                origin.0,
                event.map(|e| e.to_string()).unwrap_or_default(),
                audio_t0.as_secs_f64(),
                audio_t1.as_secs_f64(),
                bytes
            ),
            TraceEvent::ChunkRemoved {
                node,
                origin,
                audio_t0,
                audio_t1,
                ..
            } => format!(
                "{t:.4},chunk_removed,{},{},,{:.4},{:.4},,",
                node.0,
                origin.0,
                audio_t0.as_secs_f64(),
                audio_t1.as_secs_f64()
            ),
            TraceEvent::Migrated {
                from,
                to,
                chunks,
                bytes,
                duplicated,
                ..
            } => format!(
                "{t:.4},migrated,{},,,,,{},to={} chunks={} duplicated={}",
                from.0, bytes, to.0, chunks, duplicated
            ),
            TraceEvent::LeaderElected {
                node,
                event,
                handoff,
                ..
            } => format!("{t:.4},leader,{},,{},,,,handoff={}", node.0, event, handoff),
            TraceEvent::Occupancy {
                node,
                used,
                capacity,
                ..
            } => format!(
                "{t:.4},occupancy,{},,,,,{},capacity={}",
                node.0, used, capacity
            ),
            TraceEvent::SourceStarted { source, .. } => {
                format!("{t:.4},source_started,,,,,,,{source}")
            }
            TraceEvent::SourceStopped { source, .. } => {
                format!("{t:.4},source_stopped,,,,,,,{source}")
            }
            TraceEvent::FaultInjected { kind, node, .. } => format!(
                "{t:.4},fault,{},,,,,,{}",
                node.map(|n| n.0.to_string()).unwrap_or_default(),
                esc(kind)
            ),
        };
        writeln!(out, "{row}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviromic_sim::RecordKind;
    use enviromic_types::{EventId, NodeId, SimTime};

    fn t(secs: f64) -> SimTime {
        SimTime::from_jiffies((secs * 32_768.0) as u64)
    }

    #[test]
    fn csv_has_header_and_one_row_per_event() {
        let trace: Trace = vec![
            TraceEvent::Recorded {
                node: NodeId(3),
                event: Some(EventId::new(NodeId(1), 7)),
                t0: t(1.0),
                t1: t(2.0),
                bytes: 2730,
                kind: RecordKind::Task,
            },
            TraceEvent::MessageSent {
                node: NodeId(4),
                kind: "SENSING",
                bytes: 12,
                t: t(1.5),
            },
        ]
        .into_iter()
        .collect();
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].contains("recorded"));
        assert!(lines[1].contains("evt-1.7"));
        assert!(lines[2].contains("SENSING"));
        // Every row has the same number of commas as the header.
        let commas = |s: &str| s.matches(',').count();
        for l in &lines[1..] {
            assert_eq!(commas(l), commas(CSV_HEADER), "ragged row: {l}");
        }
    }

    #[test]
    fn all_variants_export_without_panicking() {
        use enviromic_sim::acoustics::SourceId;
        use enviromic_sim::DropReason;
        let trace: Trace = vec![
            TraceEvent::RecordDropped {
                node: NodeId(0),
                t0: t(0.0),
                t1: t(1.0),
                reason: DropReason::StorageFull,
            },
            TraceEvent::Erased {
                node: NodeId(0),
                t0: t(0.0),
                t1: t(1.0),
                bytes: 10,
            },
            TraceEvent::ChunkStored {
                node: NodeId(0),
                origin: NodeId(1),
                event: None,
                audio_t0: t(0.0),
                audio_t1: t(0.1),
                bytes: 232,
                t: t(0.1),
            },
            TraceEvent::ChunkRemoved {
                node: NodeId(0),
                origin: NodeId(1),
                audio_t0: t(0.0),
                audio_t1: t(0.1),
                t: t(0.2),
            },
            TraceEvent::Migrated {
                from: NodeId(0),
                to: NodeId(1),
                chunks: 4,
                bytes: 928,
                duplicated: true,
                t: t(0.3),
            },
            TraceEvent::LeaderElected {
                node: NodeId(2),
                event: EventId::new(NodeId(2), 1),
                handoff: false,
                t: t(0.4),
            },
            TraceEvent::Occupancy {
                node: NodeId(0),
                used: 5,
                capacity: 10,
                t: t(0.5),
            },
            TraceEvent::SourceStarted {
                source: SourceId(9),
                t: t(0.6),
            },
            TraceEvent::SourceStopped {
                source: SourceId(9),
                t: t(0.7),
            },
        ]
        .into_iter()
        .collect();
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 10);
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
