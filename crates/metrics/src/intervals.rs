//! Interval arithmetic over jiffy timestamps.

/// A set of half-open intervals `[start, end)` in jiffies, kept merged and
/// sorted.
///
/// # Examples
///
/// ```
/// use enviromic_metrics::IntervalSet;
///
/// let mut s = IntervalSet::new();
/// s.add(0, 10);
/// s.add(5, 20);
/// s.add(30, 40);
/// assert_eq!(s.total_len(), 30);
/// assert_eq!(s.intervals(), &[(0, 20), (30, 40)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Merged, sorted, non-touching intervals.
    merged: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Builds a set from arbitrary (possibly overlapping) intervals.
    #[must_use]
    pub fn from_intervals<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut v: Vec<(u64, u64)> = iter.into_iter().filter(|(a, b)| b > a).collect();
        v.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(v.len());
        for (a, b) in v {
            match merged.last_mut() {
                Some((_, last_b)) if a <= *last_b => *last_b = (*last_b).max(b),
                _ => merged.push((a, b)),
            }
        }
        IntervalSet { merged }
    }

    /// Adds one interval (no-op when empty or inverted).
    pub fn add(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        // Binary search for the insertion point, then merge neighbours.
        let idx = self.merged.partition_point(|&(a, _)| a < start);
        self.merged.insert(idx, (start, end));
        // Merge left neighbour and any right overlaps.
        let mut i = idx.saturating_sub(1);
        while i + 1 < self.merged.len() {
            let (a1, b1) = self.merged[i];
            let (a2, b2) = self.merged[i + 1];
            if a2 <= b1 {
                self.merged[i] = (a1, b1.max(b2));
                self.merged.remove(i + 1);
            } else if i < idx {
                i += 1;
            } else {
                break;
            }
        }
    }

    /// The merged intervals.
    #[must_use]
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.merged
    }

    /// Total covered length.
    #[must_use]
    pub fn total_len(&self) -> u64 {
        self.merged.iter().map(|(a, b)| b - a).sum()
    }

    /// Covered length within the clip window `[from, to)`.
    #[must_use]
    pub fn len_within(&self, from: u64, to: u64) -> u64 {
        if to <= from {
            return 0;
        }
        self.merged
            .iter()
            .map(|&(a, b)| {
                let a = a.max(from);
                let b = b.min(to);
                b.saturating_sub(a)
            })
            .sum()
    }

    /// True when nothing is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.merged.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_merges_overlaps_in_any_order() {
        let mut s = IntervalSet::new();
        s.add(10, 20);
        s.add(0, 5);
        s.add(4, 11); // bridges both
        assert_eq!(s.intervals(), &[(0, 20)]);
        assert_eq!(s.total_len(), 20);
    }

    #[test]
    fn touching_intervals_merge() {
        let mut s = IntervalSet::new();
        s.add(0, 10);
        s.add(10, 20);
        assert_eq!(s.intervals(), &[(0, 20)]);
    }

    #[test]
    fn disjoint_intervals_stay_apart() {
        let mut s = IntervalSet::new();
        s.add(0, 5);
        s.add(10, 15);
        assert_eq!(s.intervals().len(), 2);
        assert_eq!(s.total_len(), 10);
    }

    #[test]
    fn empty_and_inverted_are_ignored() {
        let mut s = IntervalSet::new();
        s.add(5, 5);
        s.add(9, 3);
        assert!(s.is_empty());
    }

    #[test]
    fn len_within_clips() {
        let s = IntervalSet::from_intervals([(0, 10), (20, 30)]);
        assert_eq!(s.len_within(5, 25), 10); // 5..10 and 20..25
        assert_eq!(s.len_within(100, 200), 0);
        assert_eq!(s.len_within(25, 5), 0);
    }

    #[test]
    fn from_intervals_matches_incremental_adds() {
        let data = [(3u64, 9u64), (1, 4), (15, 18), (8, 16), (20, 21)];
        let bulk = IntervalSet::from_intervals(data);
        let mut inc = IntervalSet::new();
        for (a, b) in data {
            inc.add(a, b);
        }
        assert_eq!(bulk, inc);
        assert_eq!(bulk.intervals(), &[(1, 18), (20, 21)]);
    }
}
