//! Property tests: the IntervalSet agrees with a naive boolean-array
//! model on arbitrary interval collections.

use enviromic_metrics::IntervalSet;
use proptest::prelude::*;

fn naive_union_len(intervals: &[(u64, u64)], universe: u64) -> u64 {
    let mut covered = vec![false; universe as usize];
    for &(a, b) in intervals {
        for slot in covered
            .iter_mut()
            .take((b.min(universe)) as usize)
            .skip(a as usize)
        {
            *slot = true;
        }
    }
    covered.iter().filter(|&&c| c).count() as u64
}

proptest! {
    #[test]
    fn union_matches_naive_model(
        raw in proptest::collection::vec((0u64..200, 0u64..200), 0..40)
    ) {
        let intervals: Vec<(u64, u64)> = raw;
        let mut set = IntervalSet::new();
        for &(a, b) in &intervals {
            set.add(a, b);
        }
        let expect = naive_union_len(&intervals, 200);
        prop_assert_eq!(set.total_len(), expect);
        // Bulk construction agrees with incremental adds.
        let bulk = IntervalSet::from_intervals(intervals.iter().copied());
        prop_assert_eq!(&bulk, &set);
        // Merged intervals are sorted, disjoint, and non-touching.
        for w in set.intervals().windows(2) {
            prop_assert!(w[0].1 < w[1].0, "not merged: {:?}", set.intervals());
        }
    }

    #[test]
    fn len_within_is_consistent(
        raw in proptest::collection::vec((0u64..200, 0u64..200), 0..30),
        from in 0u64..200,
        to in 0u64..200,
    ) {
        let mut set = IntervalSet::new();
        for &(a, b) in &raw {
            set.add(a, b);
        }
        let clipped: Vec<(u64, u64)> = raw
            .iter()
            .map(|&(a, b)| (a.max(from), b.min(to)))
            .collect();
        let expect = naive_union_len(&clipped, 200);
        prop_assert_eq!(set.len_within(from, to), expect);
    }
}
