//! Flash storage substrate for the EnviroMic reproduction.
//!
//! Models the mote-side storage stack of §III-B.3 ("Local Data
//! Organization"):
//!
//! * [`Flash`] — a raw block device of 256-byte pages with per-block write
//!   endurance and wear accounting;
//! * [`Chunk`] / [`ChunkMeta`] — one audio chunk per block, headered with
//!   timestamps, the recording node, and the event (file) ID;
//! * [`ChunkStore`] — the circular FIFO queue the paper describes, whose
//!   sequential write pattern wear-levels the device (write counts differ
//!   by at most 1);
//! * [`Eeprom`] — the pointer-checkpoint area enabling post-crash recovery
//!   of a collected mote's data ([`ChunkStore::recover`]).
//!
//! # Examples
//!
//! ```
//! use enviromic_flash::{Chunk, ChunkMeta, ChunkStore};
//! use enviromic_types::{EventId, NodeId, SimTime};
//!
//! # fn main() -> Result<(), enviromic_flash::StoreError> {
//! let mut store = ChunkStore::new(2048, 64); // a 0.5 MB flash
//! store.push_back(Chunk::new(
//!     ChunkMeta {
//!         origin: NodeId(7),
//!         event: Some(EventId::new(NodeId(7), 1)),
//!         t_start: SimTime::ZERO,
//!     },
//!     vec![128; 232],
//! ))?;
//! assert_eq!(store.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod eeprom;
mod meta;
mod store;
mod wear;

pub use device::{Flash, FlashError, BLOCK_BYTES};
pub use eeprom::{Checkpoint, Eeprom, EepromWornOut};
pub use meta::{Chunk, ChunkMeta, DecodeError};
pub use store::{ChunkStore, StoreError};
pub use wear::record_wear;
