//! Chunk metadata layout and the on-flash codec.
//!
//! Each 256-byte flash block stores one *chunk*: a 24-byte header followed
//! by up to 232 bytes of audio payload. The header carries exactly the
//! metadata §III-B.3 prescribes — timestamps, the recording node
//! (location-stamp), and the event/file ID — plus a store sequence number
//! and checksum used for crash recovery.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       1     magic (0xEC)
//! 1       1     flags (bit 0: has event id; bits 1-7: leader id bits 16-22)
//! 2       4     store_seq   — monotone per chunk store, recovery ordering
//! 6       2     origin      — recording node id, bits 0-15
//! 8       2     event leader node id, bits 0-15   (0 when no event)
//! 10      4     event sequence number  (0 when no event)
//! 14      6     t_start     — jiffies, 48-bit
//! 20      1     payload_len — 0..=232
//! 21      1     origin id bits 16-23 (0 for ids below 65 536)
//! 22      2     checksum    — 16-bit sum over header[0..22] + payload
//! ```
//!
//! Node IDs wider than 16 bits (the 100k-node scale rungs) spill their
//! high bits into the byte at offset 21 (formerly reserved, always 0) and
//! the upper seven flag bits (formerly unused, always 0). Headers written
//! for sub-65 536-node worlds are therefore byte-identical to the original
//! format, the header stays exactly 24 bytes, and both extension fields
//! are covered by the existing checksum span.

use crate::device::BLOCK_BYTES;
use enviromic_types::{audio, EventId, NodeId, SimDuration, SimTime};
use serde::Serialize;

/// Magic byte identifying a valid chunk header.
const MAGIC: u8 = 0xEC;
const FLAG_HAS_EVENT: u8 = 0x01;

/// Widest origin node ID the header can carry: 16 base bits plus the
/// 8 extension bits at offset 21.
const MAX_ORIGIN_ID: u32 = (1 << 24) - 1;
/// Widest event-leader node ID the header can carry: 16 base bits plus the
/// 7 extension bits in the upper flags.
const MAX_LEADER_ID: u32 = (1 << 23) - 1;

/// Metadata attached to every stored chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ChunkMeta {
    /// The node that *recorded* the audio (not necessarily the node storing
    /// it — chunks migrate for load balancing).
    pub origin: NodeId,
    /// The event (file) ID assigned by the leader; `None` for uncoordinated
    /// baseline recordings.
    pub event: Option<EventId>,
    /// Recording start timestamp (the recorder's estimate of global time).
    pub t_start: SimTime,
}

/// One stored chunk: metadata plus audio payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Chunk {
    /// Chunk metadata.
    pub meta: ChunkMeta,
    /// Audio payload, at most [`audio::CHUNK_PAYLOAD_BYTES`] bytes.
    pub payload: Vec<u8>,
}

/// Chunk decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic byte is absent — the block holds no chunk.
    NotAChunk,
    /// The declared payload length exceeds the payload area.
    BadLength,
    /// The checksum does not match the contents.
    BadChecksum,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::NotAChunk => write!(f, "block does not contain a chunk"),
            DecodeError::BadLength => write!(f, "chunk payload length is invalid"),
            DecodeError::BadChecksum => write!(f, "chunk checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn checksum(header: &[u8], payload: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    for &b in header.iter().chain(payload) {
        sum = sum.wrapping_add(u32::from(b)).wrapping_mul(31) % 65_521;
    }
    sum as u16
}

impl Chunk {
    /// Creates a chunk, validating the payload size.
    ///
    /// # Panics
    ///
    /// Panics when `payload` exceeds [`audio::CHUNK_PAYLOAD_BYTES`] bytes.
    #[must_use]
    pub fn new(meta: ChunkMeta, payload: Vec<u8>) -> Self {
        assert!(
            payload.len() <= audio::CHUNK_PAYLOAD_BYTES as usize,
            "payload of {} bytes exceeds the {}-byte chunk payload area",
            payload.len(),
            audio::CHUNK_PAYLOAD_BYTES
        );
        Chunk { meta, payload }
    }

    /// Recording end timestamp, derived from the payload length at the
    /// fixed sampling rate (one byte per sample).
    #[must_use]
    pub fn t_end(&self) -> SimTime {
        let secs = self.payload.len() as f64 / audio::SAMPLE_RATE_HZ as f64;
        self.meta.t_start + SimDuration::from_secs_f64(secs)
    }

    /// The audio span this chunk covers.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.t_end().saturating_since(self.meta.t_start)
    }

    /// Encodes the chunk into one flash block under the given store
    /// sequence number.
    #[must_use]
    pub fn encode(&self, store_seq: u32) -> [u8; BLOCK_BYTES] {
        let mut block = [0xFFu8; BLOCK_BYTES];
        block[0] = MAGIC;
        let origin = u32::from(self.meta.origin);
        assert!(
            origin <= MAX_ORIGIN_ID,
            "origin NodeId {origin} exceeds the 24-bit flash block format"
        );
        let (ev_leader, ev_seq) = match self.meta.event {
            Some(ev) => (u32::from(ev.leader()), ev.seq()),
            None => (0, 0),
        };
        assert!(
            ev_leader <= MAX_LEADER_ID,
            "leader NodeId {ev_leader} exceeds the 23-bit flash block format"
        );
        let flags = if self.meta.event.is_some() {
            FLAG_HAS_EVENT
        } else {
            0
        };
        // Leader bits 16-22 ride in the upper seven flag bits; they are
        // zero — the historical flags value — for 16-bit leaders.
        block[1] = flags | (((ev_leader >> 16) as u8) << 1);
        block[2..6].copy_from_slice(&store_seq.to_le_bytes());
        block[6..8].copy_from_slice(&(origin as u16).to_le_bytes());
        block[8..10].copy_from_slice(&(ev_leader as u16).to_le_bytes());
        block[10..14].copy_from_slice(&ev_seq.to_le_bytes());
        let jiffies = self.meta.t_start.as_jiffies();
        block[14..20].copy_from_slice(&jiffies.to_le_bytes()[..6]);
        block[20] = self.payload.len() as u8;
        // Origin bits 16-23; zero — the historical reserved byte — for
        // 16-bit origins.
        block[21] = (origin >> 16) as u8;
        let sum = checksum(&block[..22], &self.payload);
        block[22..24].copy_from_slice(&sum.to_le_bytes());
        block[24..24 + self.payload.len()].copy_from_slice(&self.payload);
        block
    }

    /// Decodes a chunk and its store sequence number from a flash block.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`].
    pub fn decode(block: &[u8; BLOCK_BYTES]) -> Result<(Chunk, u32), DecodeError> {
        if block[0] != MAGIC {
            return Err(DecodeError::NotAChunk);
        }
        let payload_len = block[20] as usize;
        if payload_len > audio::CHUNK_PAYLOAD_BYTES as usize {
            return Err(DecodeError::BadLength);
        }
        let payload = block[24..24 + payload_len].to_vec();
        let stored_sum = u16::from_le_bytes([block[22], block[23]]);
        if checksum(&block[..22], &payload) != stored_sum {
            return Err(DecodeError::BadChecksum);
        }
        let store_seq = u32::from_le_bytes([block[2], block[3], block[4], block[5]]);
        let origin = NodeId::from(
            u32::from(u16::from_le_bytes([block[6], block[7]])) | (u32::from(block[21]) << 16),
        );
        let event = if block[1] & FLAG_HAS_EVENT != 0 {
            let leader = NodeId::from(
                u32::from(u16::from_le_bytes([block[8], block[9]]))
                    | (u32::from(block[1] >> 1) << 16),
            );
            let seq = u32::from_le_bytes([block[10], block[11], block[12], block[13]]);
            Some(EventId::new(leader, seq))
        } else {
            None
        };
        let mut j = [0u8; 8];
        j[..6].copy_from_slice(&block[14..20]);
        let t_start = SimTime::from_jiffies(u64::from_le_bytes(j));
        Ok((
            Chunk {
                meta: ChunkMeta {
                    origin,
                    event,
                    t_start,
                },
                payload,
            },
            store_seq,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk(event: Option<EventId>) -> Chunk {
        Chunk::new(
            ChunkMeta {
                origin: NodeId(12),
                event,
                t_start: SimTime::from_jiffies(123_456_789),
            },
            (0..200u8).collect(),
        )
    }

    #[test]
    fn encode_decode_round_trip_with_event() {
        let c = sample_chunk(Some(EventId::new(NodeId(3), 99)));
        let block = c.encode(42);
        let (decoded, seq) = Chunk::decode(&block).unwrap();
        assert_eq!(decoded, c);
        assert_eq!(seq, 42);
    }

    #[test]
    fn encode_decode_round_trip_without_event() {
        let c = sample_chunk(None);
        let (decoded, seq) = Chunk::decode(&c.encode(0)).unwrap();
        assert_eq!(decoded, c);
        assert_eq!(seq, 0);
    }

    #[test]
    fn empty_payload_round_trips() {
        let c = Chunk::new(
            ChunkMeta {
                origin: NodeId(1),
                event: None,
                t_start: SimTime::ZERO,
            },
            vec![],
        );
        let (d, _) = Chunk::decode(&c.encode(7)).unwrap();
        assert_eq!(d.payload.len(), 0);
        assert_eq!(d.duration(), SimDuration::ZERO);
    }

    #[test]
    fn erased_block_is_not_a_chunk() {
        let block = [0xFFu8; BLOCK_BYTES];
        assert_eq!(Chunk::decode(&block), Err(DecodeError::NotAChunk));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let c = sample_chunk(Some(EventId::new(NodeId(1), 1)));
        let mut block = c.encode(1);
        block[30] ^= 0x55;
        assert_eq!(Chunk::decode(&block), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn corrupted_length_fails() {
        let c = sample_chunk(None);
        let mut block = c.encode(1);
        block[20] = 255; // > payload area
        assert_eq!(Chunk::decode(&block), Err(DecodeError::BadLength));
    }

    #[test]
    fn t_end_reflects_sample_rate() {
        let c = sample_chunk(None); // 200 samples
        let expect = 200.0 / audio::SAMPLE_RATE_HZ as f64;
        assert!((c.duration().as_secs_f64() - expect).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        let _ = Chunk::new(
            ChunkMeta {
                origin: NodeId(0),
                event: None,
                t_start: SimTime::ZERO,
            },
            vec![0; audio::CHUNK_PAYLOAD_BYTES as usize + 1],
        );
    }

    #[test]
    fn wide_node_ids_round_trip() {
        // IDs above the 16-bit base field exercise the extension bits:
        // origin in the byte at offset 21, leader in the upper flags.
        let c = Chunk::new(
            ChunkMeta {
                origin: NodeId(99_999),
                event: Some(EventId::new(NodeId(70_001), 5)),
                t_start: SimTime::from_jiffies(77),
            },
            vec![4, 5, 6],
        );
        let (d, seq) = Chunk::decode(&c.encode(9)).unwrap();
        assert_eq!(d, c);
        assert_eq!(seq, 9);
    }

    #[test]
    fn narrow_node_ids_keep_the_original_byte_layout() {
        // Sub-65 536 IDs must leave the extension fields zero so existing
        // on-flash images decode unchanged.
        let c = sample_chunk(Some(EventId::new(NodeId(3), 99)));
        let block = c.encode(42);
        assert_eq!(block[1], 0x01, "flags carry only the event bit");
        assert_eq!(block[21], 0, "origin extension byte stays zero");
    }

    #[test]
    #[should_panic(expected = "24-bit flash block format")]
    fn oversized_origin_panics() {
        let c = Chunk::new(
            ChunkMeta {
                origin: NodeId(1 << 24),
                event: None,
                t_start: SimTime::ZERO,
            },
            vec![],
        );
        let _ = c.encode(0);
    }

    #[test]
    fn large_timestamp_survives_48_bit_encoding() {
        let t = SimTime::from_jiffies((1u64 << 48) - 1);
        let c = Chunk::new(
            ChunkMeta {
                origin: NodeId(0),
                event: None,
                t_start: t,
            },
            vec![1, 2, 3],
        );
        let (d, _) = Chunk::decode(&c.encode(1)).unwrap();
        assert_eq!(d.meta.t_start, t);
    }
}
