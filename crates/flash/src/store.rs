//! The circular chunk store (§III-B.3, "Local Data Organization").
//!
//! The node's flash is organized as a circular queue of fixed-size chunks:
//! data acquired locally or received from neighbours is enqueued at the
//! tail; chunks migrated to neighbours for storage balancing are dequeued
//! from the head. Because writes march around the device in order, "all the
//! blocks receive almost the same number of write operations (different by
//! at most 1)" — the wear-leveling property the paper calls out, asserted
//! here by property tests.
//!
//! Head/length pointers are periodically checkpointed to EEPROM so a
//! crashed node's data can still be recovered after physical collection.
//! Recovery replays the checkpoint and then extends it by scanning forward
//! for validly-sequenced chunks written after the last checkpoint. Chunks
//! *popped* after the last checkpoint cannot be distinguished from live
//! ones (popping does not erase), so recovery may resurrect recently
//! migrated chunks — a safe-side duplicate, never a loss.
//!
//! Bad blocks (fault injection) are discovered lazily: a failed write marks
//! the slot in a store-level bad map and the push retries on the next good
//! slot, so the circular queue simply flows around the hole. Because writes
//! only ever target free slots, a store-bad block never holds live data.

use crate::device::{Flash, FlashError};
use crate::eeprom::{Checkpoint, Eeprom};
use crate::meta::{Chunk, DecodeError};

/// Errors returned by [`ChunkStore`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Every block already holds a live chunk.
    Full,
    /// The underlying flash refused the operation.
    Flash(FlashError),
    /// A stored block failed to decode.
    Corrupt(DecodeError),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Full => write!(f, "chunk store is full"),
            StoreError::Flash(e) => write!(f, "flash error: {e}"),
            StoreError::Corrupt(e) => write!(f, "stored chunk is corrupt: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Full => None,
            StoreError::Flash(e) => Some(e),
            StoreError::Corrupt(e) => Some(e),
        }
    }
}

impl From<FlashError> for StoreError {
    fn from(e: FlashError) -> Self {
        StoreError::Flash(e)
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Corrupt(e)
    }
}

/// A FIFO queue of chunks over a flash device, with EEPROM pointer
/// checkpoints.
///
/// # Examples
///
/// ```
/// use enviromic_flash::{Chunk, ChunkMeta, ChunkStore};
/// use enviromic_types::{NodeId, SimTime};
///
/// # fn main() -> Result<(), enviromic_flash::StoreError> {
/// let mut store = ChunkStore::new(8, 16);
/// let chunk = Chunk::new(
///     ChunkMeta { origin: NodeId(1), event: None, t_start: SimTime::ZERO },
///     vec![1, 2, 3],
/// );
/// store.push_back(chunk.clone())?;
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.pop_front()?, Some(chunk));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChunkStore {
    flash: Flash,
    eeprom: Eeprom,
    head: u32,
    len: u32,
    next_store_seq: u32,
    checkpoint_interval: u32,
    ops_since_checkpoint: u32,
    /// Store-level bad map: slots the queue flows around. Entries are only
    /// ever set on *free* slots (discovery happens on a failed write, and
    /// writes only target free slots), so `head` and every live position is
    /// always a good block.
    bad: Vec<bool>,
    bad_count: u32,
    remapped_writes: u64,
}

/// Default flash write endurance (block erase/program cycles).
const DEFAULT_ENDURANCE: u64 = 10_000;

impl ChunkStore {
    /// Creates a store over a fresh flash device of `blocks` chunks,
    /// checkpointing pointers to EEPROM every `checkpoint_interval`
    /// operations.
    ///
    /// # Panics
    ///
    /// Panics when `blocks` is zero or `checkpoint_interval` is zero.
    #[must_use]
    pub fn new(blocks: u32, checkpoint_interval: u32) -> Self {
        assert!(checkpoint_interval > 0, "checkpoint interval must be > 0");
        ChunkStore {
            flash: Flash::new(blocks, DEFAULT_ENDURANCE),
            eeprom: Eeprom::default(),
            head: 0,
            len: 0,
            next_store_seq: 0,
            checkpoint_interval,
            ops_since_checkpoint: 0,
            bad: vec![false; blocks as usize],
            bad_count: 0,
            remapped_writes: 0,
        }
    }

    /// Number of live chunks.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when no chunks are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total usable chunk slots (device blocks minus known-bad blocks).
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.flash.block_count() - self.bad_count
    }

    /// Number of writes the store had to retry on a different block after
    /// discovering a bad one.
    #[must_use]
    pub fn remapped_writes(&self) -> u64 {
        self.remapped_writes
    }

    /// Marks a *device* block bad (fault injection). The store itself only
    /// learns about the hole when a write actually fails there and gets
    /// remapped; data already live on the block stays readable until then.
    pub fn mark_bad_block(&mut self, index: u32) {
        self.flash.mark_bad(index);
    }

    /// Free chunk slots.
    #[must_use]
    pub fn free(&self) -> u32 {
        self.capacity() - self.len
    }

    /// True when every slot holds a live chunk.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// The underlying flash device (for wear inspection).
    #[must_use]
    pub fn flash(&self) -> &Flash {
        &self.flash
    }

    /// Bytes of flash payload actually resident in memory. The store's
    /// capacity is addressable, not allocated: block payloads materialize
    /// on first write, so a freshly built store of any size reports zero
    /// (what lets a 100k-node world construct in seconds).
    #[must_use]
    pub fn resident_payload_bytes(&self) -> u64 {
        self.flash.resident_payload_bytes()
    }

    /// The EEPROM holding pointer checkpoints.
    #[must_use]
    pub fn eeprom(&self) -> &Eeprom {
        &self.eeprom
    }

    fn block_at(&self, logical: u32) -> u32 {
        let cap = self.flash.block_count();
        if self.bad_count == 0 {
            return (self.head + logical) % cap;
        }
        // Skip-walk: the `logical`-th good block at or after head (mod cap).
        // Only reachable with at least one good block (capacity() > 0).
        let mut idx = self.head;
        let mut remaining = logical;
        loop {
            if !self.bad[idx as usize] {
                if remaining == 0 {
                    return idx;
                }
                remaining -= 1;
            }
            idx = (idx + 1) % cap;
        }
    }

    /// Records a freshly-discovered bad block and restores the
    /// head-is-good invariant when the queue is empty.
    fn note_bad(&mut self, index: u32) {
        let slot = &mut self.bad[index as usize];
        if !*slot {
            *slot = true;
            self.bad_count += 1;
        }
        if self.len == 0 && self.capacity() > 0 {
            // An empty queue's head may sit on the slot that just failed;
            // block_at(0) skip-walks to the next good block.
            self.head = self.block_at(0);
        }
    }

    /// Store sequence number of the oldest live chunk (or the next one to
    /// be assigned when the queue is empty).
    fn head_seq(&self) -> u32 {
        if self.len == 0 {
            return self.next_store_seq;
        }
        self.flash
            .read_block(self.head)
            .ok()
            .and_then(|b| Chunk::decode(b).ok())
            .map_or(self.next_store_seq, |(_, seq)| seq)
    }

    fn make_checkpoint(&self) -> Checkpoint {
        Checkpoint {
            head: self.head,
            len: self.len,
            next_store_seq: self.next_store_seq,
            head_seq: self.head_seq(),
        }
    }

    fn after_op(&mut self) {
        self.ops_since_checkpoint += 1;
        if self.ops_since_checkpoint >= self.checkpoint_interval {
            self.ops_since_checkpoint = 0;
            // A worn-out EEPROM only degrades crash recovery; the running
            // store keeps its pointers in RAM, so the error is swallowed
            // (C-DTOR-FAIL spirit: never fail on a background save).
            let cp = self.make_checkpoint();
            let _ = self.eeprom.save(cp);
        }
    }

    /// Appends a chunk at the tail.
    ///
    /// A write that fails with [`FlashError::BadBlock`] marks the slot in
    /// the store's bad map and retries on the next good slot (shrinking the
    /// usable capacity by one), so fault-injected bad blocks degrade
    /// capacity instead of crashing the recorder.
    ///
    /// # Errors
    ///
    /// [`StoreError::Full`] when no slot is free (including after remapping
    /// shrank the store); other flash errors propagate.
    pub fn push_back(&mut self, chunk: Chunk) -> Result<(), StoreError> {
        let block = chunk.encode(self.next_store_seq);
        loop {
            if self.is_full() {
                return Err(StoreError::Full);
            }
            let idx = self.block_at(self.len);
            match self.flash.write_block(idx, &block) {
                Ok(()) => {
                    self.next_store_seq = self.next_store_seq.wrapping_add(1);
                    self.len += 1;
                    self.after_op();
                    return Ok(());
                }
                Err(FlashError::BadBlock { index }) => {
                    self.note_bad(index);
                    self.remapped_writes += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Removes and returns the oldest chunk, or `None` when empty.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the stored block fails to decode.
    pub fn pop_front(&mut self) -> Result<Option<Chunk>, StoreError> {
        if self.is_empty() {
            return Ok(None);
        }
        let idx = self.head;
        let block = self.flash.read_block(idx)?;
        let (chunk, _) = Chunk::decode(block)?;
        self.len -= 1;
        // Advance past any bad holes so head stays on a good block.
        self.head = (self.head + 1) % self.flash.block_count();
        if self.capacity() > 0 {
            self.head = self.block_at(0);
        }
        self.after_op();
        Ok(Some(chunk))
    }

    /// Returns the oldest chunk without removing it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the stored block fails to decode.
    pub fn peek_front(&self) -> Result<Option<Chunk>, StoreError> {
        if self.is_empty() {
            return Ok(None);
        }
        let block = self.flash.read_block(self.head)?;
        let (chunk, _) = Chunk::decode(block)?;
        Ok(Some(chunk))
    }

    /// Removes and returns the newest chunk, or `None` when empty.
    ///
    /// Used by the prelude optimization: a losing prelude holder erases the
    /// clips it just wrote, which by construction sit at the tail.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the stored block fails to decode.
    pub fn pop_back(&mut self) -> Result<Option<Chunk>, StoreError> {
        if self.is_empty() {
            return Ok(None);
        }
        let idx = self.block_at(self.len - 1);
        let block = self.flash.read_block(idx)?;
        let (chunk, _) = Chunk::decode(block)?;
        self.len -= 1;
        self.after_op();
        Ok(Some(chunk))
    }

    /// Reads the chunk at logical position `i` (0 = oldest).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the stored block fails to decode;
    /// out-of-range positions yield `Ok(None)`.
    pub fn get(&self, i: u32) -> Result<Option<Chunk>, StoreError> {
        if i >= self.len {
            return Ok(None);
        }
        let block = self.flash.read_block(self.block_at(i))?;
        let (chunk, _) = Chunk::decode(block)?;
        Ok(Some(chunk))
    }

    /// Iterates over all live chunks, oldest first, skipping any that fail
    /// to decode.
    pub fn iter(&self) -> impl Iterator<Item = Chunk> + '_ {
        (0..self.len).filter_map(move |i| self.get(i).ok().flatten())
    }

    /// Forces a pointer checkpoint now.
    pub fn checkpoint(&mut self) {
        self.ops_since_checkpoint = 0;
        let cp = self.make_checkpoint();
        let _ = self.eeprom.save(cp);
    }

    /// Splits the store into its raw device and EEPROM, as when a mote is
    /// physically collected.
    #[must_use]
    pub fn into_parts(self) -> (Flash, Eeprom) {
        (self.flash, self.eeprom)
    }

    /// Rebuilds a store from a collected device and its EEPROM.
    ///
    /// Recovery is a full-device scan anchored at the newest valid store
    /// sequence number: the block holding the largest sequence is the last
    /// completed push, and the live window is reconstructed by walking
    /// backwards while sequence numbers keep decreasing. The EEPROM
    /// checkpoint contributes a *prune bound* (`head_seq`): chunks already
    /// popped at checkpoint time are not resurrected.
    ///
    /// Guarantee: every chunk live at crash time *on a good block* is
    /// recovered. Chunks popped *after* the last checkpoint may be
    /// resurrected as duplicates (popping does not erase the media) — a
    /// safe-side error, never a loss. Blocks the device has marked bad are
    /// treated as untrusted holes: the backward walk steps over them, and
    /// any data they held is conservatively considered lost at collection
    /// time.
    #[must_use]
    pub fn recover(flash: Flash, eeprom: Eeprom, checkpoint_interval: u32) -> Self {
        let prune = eeprom.load().map_or(0, |cp| cp.head_seq);
        let cap = flash.block_count();
        // Scan every good block for a valid chunk not known-dead; bad
        // blocks scan as holes.
        let mut seqs: Vec<Option<u32>> = Vec::with_capacity(cap as usize);
        for idx in 0..cap {
            let seq = if flash.is_bad(idx) {
                None
            } else {
                flash
                    .read_block(idx)
                    .ok()
                    .and_then(|b| Chunk::decode(b).ok())
                    .map(|(_, seq)| seq)
                    .filter(|&seq| seq >= prune)
            };
            seqs.push(seq);
        }
        let bad: Vec<bool> = (0..cap).map(|idx| flash.is_bad(idx)).collect();
        let bad_count = bad.iter().filter(|b| **b).count() as u32;
        let mut store = ChunkStore {
            flash,
            eeprom,
            head: 0,
            len: 0,
            next_store_seq: prune,
            checkpoint_interval: checkpoint_interval.max(1),
            ops_since_checkpoint: 0,
            bad,
            bad_count,
            remapped_writes: 0,
        };
        if store.capacity() > 0 {
            store.head = store.block_at(0); // head-is-good invariant
        }
        // Anchor at the newest push.
        let Some((tail_idx, tail_seq)) = seqs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|seq| (i as u32, seq)))
            .max_by_key(|&(_, seq)| seq)
        else {
            return store; // nothing valid: empty store
        };
        // Walk backwards while sequence numbers keep decreasing: pushes
        // land on consecutive *good* blocks (mod capacity), so the live
        // window is exactly this run with bad holes stepped over.
        let mut head_idx = tail_idx;
        let mut len = 1u32;
        let mut prev_seq = tail_seq;
        let mut j = tail_idx;
        let mut scanned = 1u32;
        while scanned < cap {
            j = (j + cap - 1) % cap;
            scanned += 1;
            if store.bad[j as usize] {
                continue; // hole inside the window: step over it
            }
            match seqs[j as usize] {
                Some(s) if s < prev_seq => {
                    head_idx = j;
                    prev_seq = s;
                    len += 1;
                }
                _ => break,
            }
        }
        store.head = head_idx;
        store.len = len;
        store.next_store_seq = tail_seq.wrapping_add(1);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ChunkMeta;
    use enviromic_types::{EventId, NodeId, SimTime};

    fn chunk(n: u8) -> Chunk {
        Chunk::new(
            ChunkMeta {
                origin: NodeId(u32::from(n)),
                event: Some(EventId::new(NodeId(1), u32::from(n))),
                t_start: SimTime::from_jiffies(u64::from(n) * 1000),
            },
            vec![n; 100],
        )
    }

    #[test]
    fn fresh_store_is_not_resident_and_recovers_sparsely() {
        // A big store costs nothing until chunks land, and recovery's
        // full-device scan over mostly-unallocated (erased) blocks finds
        // exactly the chunks that were written.
        let mut s = ChunkStore::new(100_000, 100);
        assert_eq!(s.resident_payload_bytes(), 0);
        s.push_back(chunk(1)).unwrap();
        s.push_back(chunk(2)).unwrap();
        assert!(s.resident_payload_bytes() >= 2 * crate::BLOCK_BYTES as u64);
        let resident = s.resident_payload_bytes();
        let (flash, eeprom) = s.into_parts();
        let r = ChunkStore::recover(flash, eeprom, 100);
        assert_eq!(r.len(), 2);
        assert_eq!(r.peek_front().unwrap(), Some(chunk(1)));
        assert_eq!(
            r.resident_payload_bytes(),
            resident,
            "recovery must not materialize unwritten blocks"
        );
    }

    #[test]
    fn fifo_order() {
        let mut s = ChunkStore::new(4, 100);
        for n in 0..3 {
            s.push_back(chunk(n)).unwrap();
        }
        assert_eq!(s.len(), 3);
        for n in 0..3 {
            assert_eq!(s.pop_front().unwrap(), Some(chunk(n)));
        }
        assert!(s.is_empty());
        assert_eq!(s.pop_front().unwrap(), None);
    }

    #[test]
    fn full_store_rejects_push() {
        let mut s = ChunkStore::new(2, 100);
        s.push_back(chunk(0)).unwrap();
        s.push_back(chunk(1)).unwrap();
        assert!(s.is_full());
        assert_eq!(s.push_back(chunk(2)), Err(StoreError::Full));
        assert_eq!(s.free(), 0);
    }

    #[test]
    fn wraps_around_the_device() {
        let mut s = ChunkStore::new(3, 100);
        for round in 0..5u8 {
            for n in 0..3u8 {
                s.push_back(chunk(round * 3 + n)).unwrap();
            }
            for n in 0..3u8 {
                assert_eq!(s.pop_front().unwrap(), Some(chunk(round * 3 + n)));
            }
        }
        // 15 pushes over 3 blocks: each block written exactly 5 times.
        assert_eq!(s.flash().wear_spread(), 0);
    }

    #[test]
    fn wear_spread_never_exceeds_one_under_fifo_use() {
        let mut s = ChunkStore::new(5, 100);
        let mut n = 0u8;
        for _ in 0..137 {
            if s.is_full() {
                s.pop_front().unwrap();
            }
            s.push_back(chunk(n)).unwrap();
            n = n.wrapping_add(1);
            assert!(s.flash().wear_spread() <= 1, "wear leveling violated");
        }
    }

    #[test]
    fn pop_back_removes_newest() {
        let mut s = ChunkStore::new(4, 100);
        for n in 0..3 {
            s.push_back(chunk(n)).unwrap();
        }
        assert_eq!(s.pop_back().unwrap(), Some(chunk(2)));
        assert_eq!(s.pop_front().unwrap(), Some(chunk(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn peek_and_get_do_not_consume() {
        let mut s = ChunkStore::new(4, 100);
        s.push_back(chunk(9)).unwrap();
        assert_eq!(s.peek_front().unwrap(), Some(chunk(9)));
        assert_eq!(s.get(0).unwrap(), Some(chunk(9)));
        assert_eq!(s.get(1).unwrap(), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_yields_fifo_order() {
        let mut s = ChunkStore::new(8, 100);
        for n in 0..5 {
            s.push_back(chunk(n)).unwrap();
        }
        let origins: Vec<u32> = s.iter().map(|c| c.meta.origin.0).collect();
        assert_eq!(origins, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recovery_from_checkpoint_exact() {
        let mut s = ChunkStore::new(8, 1); // checkpoint after every op
        for n in 0..5 {
            s.push_back(chunk(n)).unwrap();
        }
        s.pop_front().unwrap();
        let (flash, eeprom) = s.into_parts();
        let r = ChunkStore::recover(flash, eeprom, 1);
        let origins: Vec<u32> = r.iter().map(|c| c.meta.origin.0).collect();
        assert_eq!(origins, vec![1, 2, 3, 4]);
    }

    #[test]
    fn recovery_extends_past_stale_checkpoint() {
        // Large checkpoint interval: the checkpoint is taken once (empty)
        // and several pushes follow before the "crash".
        let mut s = ChunkStore::new(8, 100);
        s.checkpoint(); // cp: head=0 len=0 seq=0
        for n in 0..6 {
            s.push_back(chunk(n)).unwrap();
        }
        let (flash, eeprom) = s.into_parts();
        let r = ChunkStore::recover(flash, eeprom, 100);
        assert_eq!(r.len(), 6, "all post-checkpoint pushes recovered");
        let origins: Vec<u32> = r.iter().map(|c| c.meta.origin.0).collect();
        assert_eq!(origins, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn recovery_without_any_checkpoint_scans_from_zero() {
        let mut s = ChunkStore::new(8, 1_000_000);
        for n in 0..4 {
            s.push_back(chunk(n)).unwrap();
        }
        let (flash, _discarded_eeprom) = s.into_parts();
        let r = ChunkStore::recover(flash, Eeprom::default(), 16);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn recovery_may_resurrect_recent_pops_but_never_loses_pushes() {
        let mut s = ChunkStore::new(8, 1_000_000);
        for n in 0..5 {
            s.push_back(chunk(n)).unwrap();
        }
        s.checkpoint();
        // Post-checkpoint: pop two, push one.
        s.pop_front().unwrap();
        s.pop_front().unwrap();
        s.push_back(chunk(5)).unwrap();
        let live: Vec<u32> = s.iter().map(|c| c.meta.origin.0).collect();
        let (flash, eeprom) = s.into_parts();
        let r = ChunkStore::recover(flash, eeprom, 16);
        let recovered: Vec<u32> = r.iter().map(|c| c.meta.origin.0).collect();
        for o in &live {
            assert!(recovered.contains(o), "lost pushed chunk {o}");
        }
        // The two popped chunks may reappear — duplicates are allowed.
        assert!(recovered.len() >= live.len());
    }

    #[test]
    fn next_seq_continues_after_recovery() {
        let mut s = ChunkStore::new(8, 1);
        for n in 0..3 {
            s.push_back(chunk(n)).unwrap();
        }
        let (flash, eeprom) = s.into_parts();
        let mut r = ChunkStore::recover(flash, eeprom, 1);
        r.push_back(chunk(3)).unwrap();
        // All four decode with strictly increasing store sequence.
        let (flash, eeprom) = r.into_parts();
        let r2 = ChunkStore::recover(flash, eeprom, 1);
        assert_eq!(r2.len(), 4);
    }

    #[test]
    #[should_panic(expected = "checkpoint interval")]
    fn zero_checkpoint_interval_panics() {
        let _ = ChunkStore::new(4, 0);
    }

    #[test]
    fn bad_block_write_remaps_to_next_slot() {
        let mut s = ChunkStore::new(4, 100);
        s.mark_bad_block(1);
        for n in 0..3 {
            s.push_back(chunk(n)).unwrap(); // block 1 discovered bad mid-way
        }
        assert_eq!(s.remapped_writes(), 1);
        assert_eq!(s.capacity(), 3, "bad block shrank usable capacity");
        assert!(s.is_full());
        assert_eq!(s.push_back(chunk(9)), Err(StoreError::Full));
        let origins: Vec<u32> = s.iter().map(|c| c.meta.origin.0).collect();
        assert_eq!(origins, vec![0, 1, 2], "FIFO order survives the hole");
    }

    #[test]
    fn fifo_flows_around_bad_block_across_wraps() {
        let mut s = ChunkStore::new(4, 100);
        s.mark_bad_block(2);
        let mut n = 0u8;
        let mut expect = 0u8;
        for _ in 0..25 {
            if s.is_full() {
                assert_eq!(s.pop_front().unwrap(), Some(chunk(expect)));
                expect += 1;
            }
            s.push_back(chunk(n)).unwrap();
            n += 1;
        }
        while let Some(c) = s.pop_front().unwrap() {
            assert_eq!(c, chunk(expect));
            expect += 1;
        }
        assert_eq!(n, expect, "every pushed chunk came back in order");
        assert_eq!(s.flash().write_count(2), 0, "bad block never written");
    }

    #[test]
    fn bad_block_on_empty_store_moves_head() {
        let mut s = ChunkStore::new(3, 100);
        s.mark_bad_block(0); // head sits on the bad block while empty
        s.push_back(chunk(1)).unwrap();
        assert_eq!(s.remapped_writes(), 1);
        assert_eq!(s.pop_front().unwrap(), Some(chunk(1)));
    }

    #[test]
    fn recovery_steps_over_bad_holes() {
        let mut s = ChunkStore::new(5, 1);
        s.mark_bad_block(2);
        for n in 0..4 {
            s.push_back(chunk(n)).unwrap(); // lands on 0,1,3,4
        }
        let (flash, eeprom) = s.into_parts();
        let r = ChunkStore::recover(flash, eeprom, 1);
        assert_eq!(r.capacity(), 4, "recovered store inherits the bad map");
        let origins: Vec<u32> = r.iter().map(|c| c.meta.origin.0).collect();
        assert_eq!(origins, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recovery_distrusts_data_on_late_marked_bad_block() {
        let mut s = ChunkStore::new(4, 1);
        for n in 0..3 {
            s.push_back(chunk(n)).unwrap();
        }
        // The block holding chunk 1 degrades after the write.
        s.mark_bad_block(1);
        let (flash, eeprom) = s.into_parts();
        let r = ChunkStore::recover(flash, eeprom, 1);
        let origins: Vec<u32> = r.iter().map(|c| c.meta.origin.0).collect();
        assert_eq!(origins, vec![0, 2], "hole stepped over, neighbours kept");
    }
}
