//! The raw flash block device.
//!
//! Models the mote's external flash at the granularity EnviroMic uses it:
//! fixed 256-byte blocks, each with a finite write endurance. The paper's
//! local data organization (§III-B.3) is built on exactly this interface;
//! the wear counters let the tests assert the circular-queue layout's
//! wear-leveling invariant ("all the blocks receive almost the same number
//! of write operations, different by at most 1").

use enviromic_types::audio::CHUNK_BYTES;

/// Size of one flash block in bytes.
pub const BLOCK_BYTES: usize = CHUNK_BYTES as usize;

/// Errors returned by the [`Flash`] device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// Block index beyond the device capacity.
    OutOfBounds {
        /// The offending index.
        index: u32,
        /// The device's block count.
        capacity: u32,
    },
    /// The block reached its write-endurance limit.
    WearExceeded {
        /// The worn-out block.
        index: u32,
    },
    /// Data longer than one block.
    DataTooLong {
        /// Bytes offered.
        len: usize,
    },
    /// The block was marked bad (fault injection): writes fail until the
    /// caller remaps around it.
    BadBlock {
        /// The bad block.
        index: u32,
    },
}

impl core::fmt::Display for FlashError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlashError::OutOfBounds { index, capacity } => {
                write!(f, "block {index} out of bounds (capacity {capacity})")
            }
            FlashError::WearExceeded { index } => {
                write!(f, "block {index} exceeded its write endurance")
            }
            FlashError::DataTooLong { len } => {
                write!(
                    f,
                    "data of {len} bytes does not fit a {BLOCK_BYTES}-byte block"
                )
            }
            FlashError::BadBlock { index } => {
                write!(f, "block {index} is marked bad")
            }
        }
    }
}

impl std::error::Error for FlashError {}

/// A simulated flash device of fixed-size blocks with per-block wear
/// accounting.
///
/// # Examples
///
/// ```
/// use enviromic_flash::{Flash, BLOCK_BYTES};
///
/// # fn main() -> Result<(), enviromic_flash::FlashError> {
/// let mut flash = Flash::new(16, 10_000);
/// flash.write_block(3, &[0xAB; 10])?;
/// assert_eq!(&flash.read_block(3)?[..2], &[0xAB, 0xAB]);
/// assert_eq!(flash.write_count(3), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Flash {
    /// Block payloads, allocated lazily on first write: a freshly
    /// constructed (or never-written) block is `None` and reads as all
    /// `0xFF` — indistinguishable from an eagerly erased array, at none of
    /// the memory cost. A 100k-node city world carries
    /// gigabytes of *addressable* flash but writes only a sliver of it;
    /// sparse backing makes construction O(blocks) pointer-sized slots
    /// instead of first-touching every payload page.
    blocks: Vec<Option<Box<[u8; BLOCK_BYTES]>>>,
    write_counts: Vec<u64>,
    endurance: u64,
    bad: Vec<bool>,
}

/// What an unwritten (erased) block reads as.
static ERASED_BLOCK: [u8; BLOCK_BYTES] = [0xFF; BLOCK_BYTES];

impl Flash {
    /// Creates a device with `blocks` erased blocks and the given per-block
    /// write `endurance`. No block payload is allocated until its first
    /// write ([`Flash::resident_payload_bytes`] starts at zero).
    ///
    /// # Panics
    ///
    /// Panics when `blocks` is zero.
    #[must_use]
    pub fn new(blocks: u32, endurance: u64) -> Self {
        assert!(blocks > 0, "flash needs at least one block");
        Flash {
            blocks: vec![None; blocks as usize],
            write_counts: vec![0; blocks as usize],
            endurance,
            bad: vec![false; blocks as usize],
        }
    }

    /// Number of blocks on the device.
    #[must_use]
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Writes `data` to block `index` (short data is padded with `0xFF`).
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfBounds`] for a bad index,
    /// [`FlashError::DataTooLong`] when `data` exceeds a block, and
    /// [`FlashError::WearExceeded`] when the block hit its endurance limit.
    pub fn write_block(&mut self, index: u32, data: &[u8]) -> Result<(), FlashError> {
        if data.len() > BLOCK_BYTES {
            return Err(FlashError::DataTooLong { len: data.len() });
        }
        let capacity = self.block_count();
        let slot = self
            .blocks
            .get_mut(index as usize)
            .ok_or(FlashError::OutOfBounds { index, capacity })?;
        if self.bad[index as usize] {
            return Err(FlashError::BadBlock { index });
        }
        if self.write_counts[index as usize] >= self.endurance {
            return Err(FlashError::WearExceeded { index });
        }
        // First write to this block materializes its payload.
        let block = slot.get_or_insert_with(|| Box::new([0xFF; BLOCK_BYTES]));
        block[..data.len()].copy_from_slice(data);
        block[data.len()..].fill(0xFF);
        self.write_counts[index as usize] += 1;
        Ok(())
    }

    /// Reads block `index`. A never-written block reads as all `0xFF`
    /// (erased), exactly as if its payload had been allocated eagerly.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfBounds`] for a bad index.
    pub fn read_block(&self, index: u32) -> Result<&[u8; BLOCK_BYTES], FlashError> {
        let capacity = self.block_count();
        self.blocks
            .get(index as usize)
            .map(|slot| slot.as_deref().unwrap_or(&ERASED_BLOCK))
            .ok_or(FlashError::OutOfBounds { index, capacity })
    }

    /// Bytes of block payload actually resident in memory:
    /// `BLOCK_BYTES` for each block that has been written at least once.
    /// A fresh device reports zero no matter its addressable capacity.
    #[must_use]
    pub fn resident_payload_bytes(&self) -> u64 {
        self.blocks.iter().filter(|b| b.is_some()).count() as u64 * BLOCK_BYTES as u64
    }

    /// The number of completed writes to block `index` (0 for bad indices).
    #[must_use]
    pub fn write_count(&self, index: u32) -> u64 {
        self.write_counts.get(index as usize).copied().unwrap_or(0)
    }

    /// Marks block `index` bad: subsequent writes return
    /// [`FlashError::BadBlock`]. Reads still succeed — data already on the
    /// block stays readable, which is how real NAND bad blocks behave for
    /// previously-programmed pages. Out-of-range indices are ignored.
    pub fn mark_bad(&mut self, index: u32) {
        if let Some(b) = self.bad.get_mut(index as usize) {
            *b = true;
        }
    }

    /// True when block `index` has been marked bad.
    #[must_use]
    pub fn is_bad(&self, index: u32) -> bool {
        self.bad.get(index as usize).copied().unwrap_or(false)
    }

    /// Number of blocks currently marked bad.
    #[must_use]
    pub fn bad_block_count(&self) -> u32 {
        self.bad.iter().filter(|b| **b).count() as u32
    }

    /// The spread between the most- and least-written block.
    ///
    /// The chunk store's circular layout keeps this ≤ 1 — the §III-B.3
    /// wear-leveling property the tests assert.
    #[must_use]
    pub fn wear_spread(&self) -> u64 {
        let max = self.write_counts.iter().copied().max().unwrap_or(0);
        let min = self.write_counts.iter().copied().min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut f = Flash::new(4, 100);
        f.write_block(0, &[1, 2, 3]).unwrap();
        let b = f.read_block(0).unwrap();
        assert_eq!(&b[..3], &[1, 2, 3]);
        assert_eq!(b[3], 0xFF, "padding fills with erased value");
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut f = Flash::new(2, 100);
        assert_eq!(
            f.write_block(2, &[0]),
            Err(FlashError::OutOfBounds {
                index: 2,
                capacity: 2
            })
        );
        assert!(f.read_block(9).is_err());
    }

    #[test]
    fn rejects_oversized_data() {
        let mut f = Flash::new(1, 100);
        let big = vec![0u8; BLOCK_BYTES + 1];
        assert_eq!(
            f.write_block(0, &big),
            Err(FlashError::DataTooLong {
                len: BLOCK_BYTES + 1
            })
        );
    }

    #[test]
    fn enforces_endurance() {
        let mut f = Flash::new(1, 2);
        f.write_block(0, &[1]).unwrap();
        f.write_block(0, &[2]).unwrap();
        assert_eq!(
            f.write_block(0, &[3]),
            Err(FlashError::WearExceeded { index: 0 })
        );
        assert_eq!(f.write_count(0), 2);
    }

    #[test]
    fn wear_spread_tracks_counts() {
        let mut f = Flash::new(3, 100);
        assert_eq!(f.wear_spread(), 0);
        f.write_block(0, &[0]).unwrap();
        f.write_block(0, &[0]).unwrap();
        f.write_block(1, &[0]).unwrap();
        assert_eq!(f.wear_spread(), 2);
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = FlashError::WearExceeded { index: 7 };
        assert!(e.to_string().contains("7"));
        let e = FlashError::OutOfBounds {
            index: 9,
            capacity: 4,
        };
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = Flash::new(0, 1);
    }

    #[test]
    fn payloads_are_lazy_until_first_write() {
        // 1M addressable blocks (256 MB of payload if eager) must cost
        // nothing up front and read as erased.
        let mut f = Flash::new(1_000_000, 100);
        assert_eq!(f.resident_payload_bytes(), 0);
        assert!(f.read_block(999_999).unwrap().iter().all(|&b| b == 0xFF));
        f.write_block(123_456, &[1, 2, 3]).unwrap();
        assert_eq!(f.resident_payload_bytes(), BLOCK_BYTES as u64);
        assert_eq!(&f.read_block(123_456).unwrap()[..3], &[1, 2, 3]);
        // Rewriting the same block allocates nothing new.
        f.write_block(123_456, &[9]).unwrap();
        assert_eq!(f.resident_payload_bytes(), BLOCK_BYTES as u64);
    }

    #[test]
    fn bad_block_rejects_writes_but_keeps_reads() {
        let mut f = Flash::new(4, 100);
        f.write_block(2, &[7, 8]).unwrap();
        f.mark_bad(2);
        assert!(f.is_bad(2));
        assert_eq!(f.bad_block_count(), 1);
        assert_eq!(
            f.write_block(2, &[9]),
            Err(FlashError::BadBlock { index: 2 })
        );
        assert_eq!(&f.read_block(2).unwrap()[..2], &[7, 8], "old data readable");
        assert_eq!(f.write_count(2), 1, "failed write leaves wear untouched");
        f.mark_bad(99); // out of range: ignored
        assert!(!f.is_bad(99));
        assert!(FlashError::BadBlock { index: 2 }
            .to_string()
            .contains("bad"));
    }
}
