//! The in-chip EEPROM used for pointer checkpoints.
//!
//! §III-B.3: "We periodically save the head and tail pointers of the queue
//! to the in-chip EEPROM of MicaZ motes, which has a much larger write
//! limit, so that even if a node fails we can still correctly retrieve its
//! locally stored data after the node is collected."
//!
//! The model stores one [`Checkpoint`] record with its own (large) write
//! endurance, and survives "crashes" trivially because it lives in a
//! separate struct the tests can carry across a simulated reboot.

use serde::Serialize;

/// The chunk-store state persisted to EEPROM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Checkpoint {
    /// Flash block index of the oldest chunk.
    pub head: u32,
    /// Number of chunks in the queue.
    pub len: u32,
    /// The store sequence number the *next* pushed chunk will get.
    pub next_store_seq: u32,
    /// Store sequence number of the oldest live chunk at checkpoint time
    /// (equals `next_store_seq` when the queue was empty). Recovery uses it
    /// to avoid resurrecting chunks known-dead at checkpoint time.
    pub head_seq: u32,
}

/// EEPROM write failure: the endurance limit was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EepromWornOut;

impl core::fmt::Display for EepromWornOut {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "eeprom exceeded its write endurance")
    }
}

impl std::error::Error for EepromWornOut {}

/// A tiny persistent store holding the latest [`Checkpoint`].
///
/// # Examples
///
/// ```
/// use enviromic_flash::{Checkpoint, Eeprom};
///
/// # fn main() -> Result<(), enviromic_flash::EepromWornOut> {
/// let mut ee = Eeprom::new(100_000);
/// assert_eq!(ee.load(), None);
/// ee.save(Checkpoint { head: 3, len: 10, next_store_seq: 55, head_seq: 45 })?;
/// assert_eq!(ee.load().unwrap().head, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Eeprom {
    checkpoint: Option<Checkpoint>,
    writes: u64,
    endurance: u64,
}

impl Eeprom {
    /// Creates an empty EEPROM with the given write endurance.
    #[must_use]
    pub fn new(endurance: u64) -> Self {
        Eeprom {
            checkpoint: None,
            writes: 0,
            endurance,
        }
    }

    /// Persists a checkpoint.
    ///
    /// # Errors
    ///
    /// [`EepromWornOut`] once the endurance limit is reached.
    pub fn save(&mut self, checkpoint: Checkpoint) -> Result<(), EepromWornOut> {
        if self.writes >= self.endurance {
            return Err(EepromWornOut);
        }
        self.writes += 1;
        self.checkpoint = Some(checkpoint);
        Ok(())
    }

    /// The most recently saved checkpoint, if any.
    #[must_use]
    pub fn load(&self) -> Option<Checkpoint> {
        self.checkpoint
    }

    /// Total completed writes.
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

impl Default for Eeprom {
    /// An EEPROM with the MicaZ-class default endurance of 100 000 writes.
    fn default() -> Self {
        Eeprom::new(100_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        assert_eq!(Eeprom::default().load(), None);
    }

    #[test]
    fn save_load_round_trip() {
        let mut ee = Eeprom::new(10);
        let cp = Checkpoint {
            head: 1,
            len: 2,
            next_store_seq: 3,
            head_seq: 1,
        };
        ee.save(cp).unwrap();
        assert_eq!(ee.load(), Some(cp));
        assert_eq!(ee.write_count(), 1);
    }

    #[test]
    fn newest_checkpoint_wins() {
        let mut ee = Eeprom::new(10);
        for i in 0..5 {
            ee.save(Checkpoint {
                head: i,
                len: 0,
                next_store_seq: 0,
                head_seq: 0,
            })
            .unwrap();
        }
        assert_eq!(ee.load().unwrap().head, 4);
    }

    #[test]
    fn wears_out() {
        let mut ee = Eeprom::new(1);
        let cp = Checkpoint {
            head: 0,
            len: 0,
            next_store_seq: 0,
            head_seq: 0,
        };
        ee.save(cp).unwrap();
        assert_eq!(ee.save(cp), Err(EepromWornOut));
    }
}
