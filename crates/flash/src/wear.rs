//! Wear telemetry: folds a device's per-block write accounting into a
//! metrics registry.

use crate::Flash;
use enviromic_telemetry::Registry;

/// Records one device's wear state into `registry`:
///
/// * `flash.writes.total` — counter, completed block writes;
/// * `flash.block_writes` — histogram over per-block write counts (its
///   min/max spread shows how well the circular layout levels wear);
/// * `flash.wear_spread` — histogram of max−min write-count spreads, one
///   observation per scraped device (§III-B.3 keeps each ≤ 1).
///
/// Intended for an end-of-run scrape (e.g. from an application's
/// `on_finish` hook); calling it repeatedly on the same device would
/// double-count.
pub fn record_wear(registry: &Registry, flash: &Flash) {
    let per_block = registry.histogram("flash.block_writes");
    let mut total = 0u64;
    for index in 0..flash.block_count() {
        let n = flash.write_count(index);
        total += n;
        per_block.observe(n as f64);
    }
    registry.counter("flash.writes.total").add(total);
    registry
        .histogram("flash.wear_spread")
        .observe(flash.wear_spread() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_reports_totals_and_spread() {
        let mut flash = Flash::new(4, 100);
        flash.write_block(0, &[1]).unwrap();
        flash.write_block(0, &[2]).unwrap();
        flash.write_block(1, &[3]).unwrap();
        let reg = Registry::new();
        record_wear(&reg, &flash);
        let report = reg.report();
        assert_eq!(report.counter("flash.writes.total"), Some(3));
        let blocks = report.histogram("flash.block_writes").unwrap();
        assert_eq!(blocks.count, 4, "one observation per block");
        assert_eq!(blocks.max, 2.0);
        assert_eq!(report.histogram("flash.wear_spread").unwrap().max, 2.0);
    }
}
