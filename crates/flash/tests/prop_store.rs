//! Property tests for the chunk store: FIFO integrity, wear leveling, and
//! crash-recovery safety under arbitrary operation interleavings.

use enviromic_flash::{Chunk, ChunkMeta, ChunkStore, StoreError};
use enviromic_types::{EventId, NodeId, SimTime};
use proptest::prelude::*;
use std::collections::VecDeque;

fn chunk(tag: u32) -> Chunk {
    Chunk::new(
        ChunkMeta {
            origin: NodeId(tag),
            event: Some(EventId::new(NodeId(tag), tag)),
            t_start: SimTime::from_jiffies(u64::from(tag) * 7919),
        },
        vec![tag as u8; (tag as usize % 232).max(1)],
    )
}

#[derive(Debug, Clone)]
enum Op {
    Push,
    PopFront,
    PopBack,
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Push),
        2 => Just(Op::PopFront),
        1 => Just(Op::PopBack),
        1 => Just(Op::Checkpoint),
    ]
}

proptest! {
    /// The store behaves exactly like a reference double-ended queue under
    /// arbitrary push/pop interleavings.
    #[test]
    fn store_matches_reference_deque(
        capacity in 1u32..32,
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let mut store = ChunkStore::new(capacity, 8);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next_tag = 0u32;
        for op in ops {
            match op {
                Op::Push => {
                    let c = chunk(next_tag);
                    match store.push_back(c) {
                        Ok(()) => {
                            prop_assert!(model.len() < capacity as usize);
                            model.push_back(next_tag);
                        }
                        Err(StoreError::Full) => {
                            prop_assert_eq!(model.len(), capacity as usize);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                    next_tag += 1;
                }
                Op::PopFront => {
                    let got = store.pop_front().unwrap().map(|c| c.meta.origin.0);
                    prop_assert_eq!(got, model.pop_front());
                }
                Op::PopBack => {
                    let got = store.pop_back().unwrap().map(|c| c.meta.origin.0);
                    prop_assert_eq!(got, model.pop_back());
                }
                Op::Checkpoint => store.checkpoint(),
            }
            prop_assert_eq!(store.len() as usize, model.len());
            prop_assert_eq!(store.is_empty(), model.is_empty());
            let stored: Vec<u32> = store.iter().map(|c| c.meta.origin.0).collect();
            let expect: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(stored, expect);
        }
    }

    /// Pure FIFO use (no pop_back) keeps block write counts within 1 of
    /// each other — the paper's wear-leveling claim.
    #[test]
    fn wear_spread_at_most_one_without_pop_back(
        capacity in 1u32..24,
        ops in proptest::collection::vec(prop_oneof![3 => Just(true), 2 => Just(false)], 0..300),
    ) {
        let mut store = ChunkStore::new(capacity, 16);
        let mut tag = 0u32;
        for push in ops {
            if push {
                let _ = store.push_back(chunk(tag));
                tag += 1;
            } else {
                let _ = store.pop_front();
            }
            prop_assert!(store.flash().wear_spread() <= 1);
        }
    }

    /// Crash recovery never loses a chunk that was live at crash time.
    #[test]
    fn recovery_is_superset_of_live_chunks(
        capacity in 2u32..16,
        checkpoint_interval in 1u32..32,
        ops in proptest::collection::vec(op_strategy(), 0..120),
    ) {
        let mut store = ChunkStore::new(capacity, checkpoint_interval);
        let mut tag = 0u32;
        for op in ops {
            match op {
                Op::Push => { let _ = store.push_back(chunk(tag)); tag += 1; }
                Op::PopFront => { let _ = store.pop_front(); }
                // pop_back interacts with resurrection in the expected
                // lossy-duplicate way only for *popped* data; pushes stay
                // safe. Keep it in the mix.
                Op::PopBack => { let _ = store.pop_back(); }
                Op::Checkpoint => store.checkpoint(),
            }
        }
        let live: Vec<u32> = store.iter().map(|c| c.meta.origin.0).collect();
        let (flash, eeprom) = store.into_parts();
        let recovered = ChunkStore::recover(flash, eeprom, checkpoint_interval);
        let got: Vec<u32> = recovered.iter().map(|c| c.meta.origin.0).collect();
        for t in &live {
            prop_assert!(got.contains(t), "chunk {} lost by recovery", t);
        }
    }

    /// Chunk encode/decode round-trips for arbitrary metadata and payloads.
    #[test]
    fn chunk_codec_round_trips(
        origin in 0u16..u16::MAX,
        has_event in any::<bool>(),
        leader in 0u16..u16::MAX,
        evseq in any::<u32>(),
        jiffies in 0u64..(1u64 << 48),
        payload in proptest::collection::vec(any::<u8>(), 0..=232),
        store_seq in any::<u32>(),
    ) {
        let c = Chunk::new(
            ChunkMeta {
                origin: NodeId::from(origin),
                event: has_event.then(|| EventId::new(NodeId::from(leader), evseq)),
                t_start: SimTime::from_jiffies(jiffies),
            },
            payload,
        );
        let block = c.encode(store_seq);
        let (decoded, seq) = Chunk::decode(&block).unwrap();
        prop_assert_eq!(decoded, c);
        prop_assert_eq!(seq, store_seq);
    }
}
