//! FTSP-style loose time synchronization (§III-A).
//!
//! Recorded chunks are timestamped so the basestation can correlate audio
//! across motes, which requires the network to be *loosely* synchronized.
//! The paper adapts FTSP (Maróti et al., SenSys '04) with two
//! power-oriented twists, both reproduced here:
//!
//! * **adaptive beaconing** — "to make it more power-efficient, we reduce
//!   synchronization frequency when events are rare"
//!   ([`BeaconScheduler`]);
//! * **piggyback sync** — "clocks at recorders are further synchronized by
//!   the receipt of the leader's task assignment messages"
//!   ([`SyncState::on_leader_time`]).
//!
//! [`SyncState`] holds the per-node regression table mapping the local
//! skewed clock to the elected reference node's clock. The reference is
//! the lowest node ID heard, as in FTSP.
//!
//! # Examples
//!
//! ```
//! use enviromic_timesync::SyncState;
//! use enviromic_types::{NodeId, SimTime};
//!
//! let mut sync = SyncState::new(NodeId(5));
//! // Two beacons from root n0: local clock runs 100 jiffies ahead.
//! sync.on_beacon(NodeId(0), 0, SimTime::from_jiffies(1100), SimTime::from_jiffies(1000));
//! sync.on_beacon(NodeId(0), 1, SimTime::from_jiffies(2100), SimTime::from_jiffies(2000));
//! let est = sync.global_estimate(SimTime::from_jiffies(3100));
//! assert_eq!(est.as_jiffies(), 3000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use enviromic_types::{NodeId, SimDuration, SimTime};

/// Maximum regression table entries (FTSP uses 8).
const WINDOW: usize = 8;

/// Per-node synchronization state: reference election plus an offset/skew
/// regression over recent beacons.
#[derive(Debug, Clone)]
pub struct SyncState {
    me: NodeId,
    root: NodeId,
    highest_seq: Option<u32>,
    /// (local receive time, root reference time) pairs.
    table: Vec<(f64, f64)>,
    /// Regression coefficients: `ref ≈ slope * local + intercept`.
    slope: f64,
    intercept: f64,
    synced: bool,
}

impl SyncState {
    /// Creates unsynchronized state for node `me`. Until beacons arrive,
    /// the node considers itself the reference.
    #[must_use]
    pub fn new(me: NodeId) -> Self {
        SyncState {
            me,
            root: me,
            highest_seq: None,
            table: Vec::new(),
            slope: 1.0,
            intercept: 0.0,
            synced: false,
        }
    }

    /// The node this state belongs to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The currently elected reference node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// True when the node currently believes it is the reference and
    /// should originate beacons.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.root == self.me
    }

    /// True once at least one beacon produced a usable mapping.
    #[must_use]
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// The sequence number for the next originated beacon (root role).
    #[must_use]
    pub fn next_seq(&self) -> u32 {
        self.highest_seq.map_or(0, |s| s.wrapping_add(1))
    }

    /// Processes a `TIME_SYNC` beacon heard at local time `local_recv`
    /// carrying the root's clock `ref_time`.
    ///
    /// Returns `true` when the beacon was fresh (new root or new sequence)
    /// and should be re-flooded by multihop deployments.
    pub fn on_beacon(
        &mut self,
        root: NodeId,
        seq: u32,
        local_recv: SimTime,
        ref_time: SimTime,
    ) -> bool {
        // FTSP root election: lower ID wins.
        if root > self.root {
            return false;
        }
        if root < self.root {
            self.root = root;
            self.highest_seq = None;
            self.table.clear();
            self.synced = false;
        }
        if let Some(h) = self.highest_seq {
            if seq <= h {
                return false; // stale or duplicate flood
            }
        }
        self.highest_seq = Some(seq);
        self.insert_pair(local_recv, ref_time);
        true
    }

    /// Cheap single-point resynchronization from a leader's task
    /// assignment message (§III-A): treats the leader's clock as a
    /// reference sample without changing root election.
    pub fn on_leader_time(&mut self, local_recv: SimTime, leader_time: SimTime) {
        self.insert_pair(local_recv, leader_time);
    }

    fn insert_pair(&mut self, local: SimTime, reference: SimTime) {
        if self.table.len() == WINDOW {
            self.table.remove(0);
        }
        self.table
            .push((local.as_jiffies() as f64, reference.as_jiffies() as f64));
        self.recompute();
    }

    fn recompute(&mut self) {
        match self.table.len() {
            0 => {
                self.slope = 1.0;
                self.intercept = 0.0;
                self.synced = false;
            }
            1 => {
                // One sample: assume perfect rate, correct offset only.
                self.slope = 1.0;
                self.intercept = self.table[0].1 - self.table[0].0;
                self.synced = true;
            }
            n => {
                // Least-squares ref = slope * local + intercept, computed
                // around the centroid for numerical stability.
                let n_f = n as f64;
                let mean_x = self.table.iter().map(|p| p.0).sum::<f64>() / n_f;
                let mean_y = self.table.iter().map(|p| p.1).sum::<f64>() / n_f;
                let mut sxx = 0.0;
                let mut sxy = 0.0;
                for &(x, y) in &self.table {
                    sxx += (x - mean_x) * (x - mean_x);
                    sxy += (x - mean_x) * (y - mean_y);
                }
                self.slope = if sxx > 0.0 { sxy / sxx } else { 1.0 };
                self.intercept = mean_y - self.slope * mean_x;
                self.synced = true;
            }
        }
    }

    /// Maps a local clock reading to estimated reference (global) time.
    /// Before any beacon arrives this is the identity.
    #[must_use]
    pub fn global_estimate(&self, local: SimTime) -> SimTime {
        if !self.synced {
            return local;
        }
        let est = self.slope * local.as_jiffies() as f64 + self.intercept;
        SimTime::from_jiffies(est.max(0.0).round() as u64)
    }

    /// The regression's current skew estimate (reference jiffies per local
    /// jiffy).
    #[must_use]
    pub fn skew(&self) -> f64 {
        self.slope
    }
}

/// Adaptive beacon scheduling: frequent sync while acoustic events are
/// happening, exponentially rarer when the field is quiet.
#[derive(Debug, Clone)]
pub struct BeaconScheduler {
    min_period: SimDuration,
    max_period: SimDuration,
    current: SimDuration,
    next_due: SimTime,
}

impl BeaconScheduler {
    /// Creates a scheduler that starts at `min_period` and backs off to
    /// `max_period` while no events occur.
    ///
    /// # Panics
    ///
    /// Panics when `min_period` is zero or exceeds `max_period`.
    #[must_use]
    pub fn new(min_period: SimDuration, max_period: SimDuration) -> Self {
        assert!(!min_period.is_zero(), "beacon period must be positive");
        assert!(min_period <= max_period, "min period must not exceed max");
        BeaconScheduler {
            min_period,
            max_period,
            current: min_period,
            next_due: SimTime::ZERO + min_period,
        }
    }

    /// The current inter-beacon period.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.current
    }

    /// When the next beacon should be sent.
    #[must_use]
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Notes that a beacon was sent at `now`; backs the period off
    /// (doubling toward the maximum) since nothing reset it.
    pub fn beacon_sent(&mut self, now: SimTime) {
        self.current = (self.current * 2).min(self.max_period);
        self.next_due = now + self.current;
    }

    /// Notes acoustic activity: sync matters now, so return to the fast
    /// period.
    pub fn activity(&mut self, now: SimTime) {
        self.current = self.min_period;
        if self.next_due > now + self.current {
            self.next_due = now + self.current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A skewed local clock for test purposes.
    fn local_clock(global: u64, skew_ppm: f64, offset: u64) -> SimTime {
        SimTime::from_jiffies((global as f64 * (1.0 + skew_ppm * 1e-6)).round() as u64 + offset)
    }

    #[test]
    fn unsynced_estimate_is_identity() {
        let s = SyncState::new(NodeId(3));
        assert!(!s.is_synced());
        assert!(s.is_root());
        let t = SimTime::from_jiffies(123);
        assert_eq!(s.global_estimate(t), t);
    }

    #[test]
    fn converges_on_offset_and_skew() {
        let mut s = SyncState::new(NodeId(5));
        let skew = 40.0; // ppm
        let offset = 32_768 * 3; // 3 s ahead
        for k in 0..8u64 {
            let global = (k + 1) * 32_768 * 30; // every 30 s
            assert!(s.on_beacon(
                NodeId(0),
                k as u32,
                local_clock(global, skew, offset),
                SimTime::from_jiffies(global),
            ));
        }
        assert!(s.is_synced());
        // Estimate a time 60 s past the last beacon.
        let global = 32_768 * (8 * 30 + 60);
        let est = s.global_estimate(local_clock(global, skew, offset));
        let err = est.as_jiffies() as i64 - global as i64;
        assert!(err.abs() <= 2, "sync error {err} jiffies");
        assert!((s.skew() - 1.0 / (1.0 + skew * 1e-6)).abs() < 1e-4);
    }

    #[test]
    fn lower_id_root_preempts() {
        let mut s = SyncState::new(NodeId(5));
        assert!(s.on_beacon(
            NodeId(3),
            0,
            SimTime::from_jiffies(10),
            SimTime::from_jiffies(10)
        ));
        assert_eq!(s.root(), NodeId(3));
        // Higher-ID root is ignored.
        assert!(!s.on_beacon(
            NodeId(4),
            9,
            SimTime::from_jiffies(20),
            SimTime::from_jiffies(20)
        ));
        assert_eq!(s.root(), NodeId(3));
        // Lower-ID root takes over and resets the table.
        assert!(s.on_beacon(
            NodeId(1),
            0,
            SimTime::from_jiffies(30),
            SimTime::from_jiffies(29)
        ));
        assert_eq!(s.root(), NodeId(1));
        assert!(!s.is_root());
    }

    #[test]
    fn stale_sequences_are_ignored() {
        let mut s = SyncState::new(NodeId(5));
        assert!(s.on_beacon(
            NodeId(0),
            5,
            SimTime::from_jiffies(10),
            SimTime::from_jiffies(10)
        ));
        assert!(!s.on_beacon(
            NodeId(0),
            5,
            SimTime::from_jiffies(20),
            SimTime::from_jiffies(20)
        ));
        assert!(!s.on_beacon(
            NodeId(0),
            4,
            SimTime::from_jiffies(30),
            SimTime::from_jiffies(30)
        ));
        assert!(s.on_beacon(
            NodeId(0),
            6,
            SimTime::from_jiffies(40),
            SimTime::from_jiffies(40)
        ));
        assert_eq!(s.next_seq(), 7);
    }

    #[test]
    fn leader_time_sync_corrects_offset_without_beacons() {
        let mut s = SyncState::new(NodeId(5));
        let offset = 1000;
        s.on_leader_time(
            SimTime::from_jiffies(5000 + offset),
            SimTime::from_jiffies(5000),
        );
        assert!(s.is_synced());
        let est = s.global_estimate(SimTime::from_jiffies(9000 + offset));
        assert_eq!(est.as_jiffies(), 9000);
    }

    #[test]
    fn window_keeps_most_recent_pairs() {
        let mut s = SyncState::new(NodeId(5));
        // Early pairs are wildly wrong; the 8-pair window must forget them.
        for k in 0..12u64 {
            s.on_beacon(
                NodeId(0),
                k as u32,
                SimTime::from_jiffies(k * 1000 + 500_000),
                SimTime::from_jiffies(k * 1000),
            );
        }
        for k in 12..20u64 {
            s.on_beacon(
                NodeId(0),
                k as u32,
                SimTime::from_jiffies(k * 1000 + 7),
                SimTime::from_jiffies(k * 1000),
            );
        }
        let est = s.global_estimate(SimTime::from_jiffies(25_000 + 7));
        let err = est.as_jiffies() as i64 - 25_000;
        assert!(err.abs() <= 2, "old pairs still dominate: err {err}");
    }

    #[test]
    fn scheduler_backs_off_and_resets() {
        let min = SimDuration::from_millis(1000);
        let max = SimDuration::from_millis(8000);
        let mut b = BeaconScheduler::new(min, max);
        assert_eq!(b.period(), min);
        let t0 = SimTime::ZERO + min;
        b.beacon_sent(t0);
        assert_eq!(b.period(), min * 2);
        b.beacon_sent(b.next_due());
        b.beacon_sent(b.next_due());
        b.beacon_sent(b.next_due());
        assert_eq!(b.period(), max, "clamped at max");
        let now = b.next_due();
        b.activity(now);
        assert_eq!(b.period(), min);
        // The due time never moves later than one fast period from now.
        assert!(b.next_due() <= now + min);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_periods_panic() {
        let _ = BeaconScheduler::new(SimDuration::from_millis(10), SimDuration::from_millis(5));
    }
}
