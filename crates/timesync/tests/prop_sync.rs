//! Property tests: the FTSP-style regression recovers arbitrary affine
//! clock relationships from beacon samples.

use enviromic_timesync::SyncState;
use enviromic_types::{NodeId, SimTime};
use proptest::prelude::*;

proptest! {
    /// For any skew within crystal tolerance and any offset, eight beacons
    /// let the regression map local time back to the reference frame with
    /// sub-millisecond error.
    #[test]
    fn regression_recovers_affine_clocks(
        skew_ppm in -100.0f64..100.0,
        offset in 0u64..(32_768 * 10),
        period_s in 5u64..120,
        probe_gap_s in 1u64..600,
    ) {
        let local_of = |global: u64| -> SimTime {
            SimTime::from_jiffies(
                (global as f64 * (1.0 + skew_ppm * 1e-6)).round() as u64 + offset,
            )
        };
        let mut s = SyncState::new(NodeId(9));
        for k in 0..8u64 {
            let global = (k + 1) * period_s * 32_768;
            s.on_beacon(NodeId(0), k as u32, local_of(global), SimTime::from_jiffies(global));
        }
        prop_assert!(s.is_synced());
        let probe = (8 * period_s + probe_gap_s) * 32_768;
        let est = s.global_estimate(local_of(probe));
        let err = est.as_jiffies() as i64 - probe as i64;
        // Sub-millisecond: 32.768 jiffies per ms.
        prop_assert!(err.abs() < 33, "error {err} jiffies (skew {skew_ppm}ppm)");
    }

    /// Root election is stable: the lowest ID ever heard wins regardless
    /// of arrival order.
    #[test]
    fn lowest_root_wins(ids in proptest::collection::vec(0u32..100, 1..20)) {
        let mut s = SyncState::new(NodeId(200));
        for (k, &id) in ids.iter().enumerate() {
            let t = SimTime::from_jiffies((k as u64 + 1) * 1000);
            let _ = s.on_beacon(NodeId(id), 0, t, t);
        }
        let expect = ids.iter().copied().min().expect("non-empty");
        prop_assert_eq!(s.root(), NodeId(expect));
    }
}
